#include "src/storage/block_device.h"

#include <fcntl.h>
#include <limits.h>
#include <sys/uio.h>
#include <unistd.h>

#ifndef IOV_MAX
#define IOV_MAX 1024
#endif

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "src/common/stats.h"

namespace hfad {

namespace {

Status RangeCheck(uint64_t offset, size_t size, uint64_t capacity) {
  if (offset > capacity || size > capacity - offset) {
    return Status::OutOfRange("device access [" + std::to_string(offset) + ", +" +
                              std::to_string(size) + ") beyond capacity " +
                              std::to_string(capacity));
  }
  return Status::Ok();
}

}  // namespace

namespace blockdev_internal {

std::vector<WriteRun> CoalesceExtents(std::vector<WriteExtent>* extents) {
  std::sort(extents->begin(), extents->end(),
            [](const WriteExtent& a, const WriteExtent& b) { return a.offset < b.offset; });
  std::vector<WriteRun> runs;
  for (const WriteExtent& e : *extents) {
    if (e.data.empty()) {
      continue;
    }
    if (!runs.empty() && runs.back().offset + runs.back().size == e.offset) {
      runs.back().parts.push_back(e.data);
      runs.back().size += e.data.size();
      continue;
    }
    WriteRun run;
    run.offset = e.offset;
    run.size = e.data.size();
    run.parts.push_back(e.data);
    runs.push_back(std::move(run));
  }
  stats::Add(stats::Counter::kDeviceWriteBatches);
  stats::Add(stats::Counter::kDeviceBatchRuns, runs.size());
  return runs;
}

}  // namespace blockdev_internal

Status BlockDevice::WriteBatch(std::vector<WriteExtent> extents) {
  std::vector<blockdev_internal::WriteRun> runs =
      blockdev_internal::CoalesceExtents(&extents);
  std::string scratch;
  for (const auto& run : runs) {
    if (run.parts.size() == 1) {
      HFAD_RETURN_IF_ERROR(Write(run.offset, run.parts[0]));
      continue;
    }
    scratch.clear();
    scratch.reserve(run.size);
    for (const Slice& part : run.parts) {
      scratch.append(part.data(), part.size());
    }
    HFAD_RETURN_IF_ERROR(Write(run.offset, Slice(scratch)));
  }
  return Status::Ok();
}

MemoryBlockDevice::MemoryBlockDevice(uint64_t size_bytes) : data_(size_bytes, 0) {}

Status MemoryBlockDevice::Read(uint64_t offset, size_t size, std::string* out) const {
  HFAD_RETURN_IF_ERROR(RangeCheck(offset, size, data_.size()));
  out->assign(data_.data() + offset, size);
  return Status::Ok();
}

Status MemoryBlockDevice::Write(uint64_t offset, Slice data) {
  HFAD_RETURN_IF_ERROR(RangeCheck(offset, data.size(), data_.size()));
  memcpy(data_.data() + offset, data.data(), data.size());
  return Status::Ok();
}

Status MemoryBlockDevice::WriteBatch(std::vector<WriteExtent> extents) {
  std::vector<blockdev_internal::WriteRun> runs =
      blockdev_internal::CoalesceExtents(&extents);
  for (const auto& run : runs) {
    HFAD_RETURN_IF_ERROR(RangeCheck(run.offset, run.size, data_.size()));
    uint64_t pos = run.offset;
    for (const Slice& part : run.parts) {
      memcpy(data_.data() + pos, part.data(), part.size());
      pos += part.size();
    }
  }
  return Status::Ok();
}

Result<std::unique_ptr<FileBlockDevice>> FileBlockDevice::Open(const std::string& path,
                                                               uint64_t size_bytes) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) {
    return Status::IoError("open " + path + ": " + strerror(errno));
  }
  if (::ftruncate(fd, static_cast<off_t>(size_bytes)) != 0) {
    ::close(fd);
    return Status::IoError("ftruncate " + path + ": " + strerror(errno));
  }
  return std::unique_ptr<FileBlockDevice>(new FileBlockDevice(fd, size_bytes));
}

FileBlockDevice::~FileBlockDevice() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

Status FileBlockDevice::Read(uint64_t offset, size_t size, std::string* out) const {
  HFAD_RETURN_IF_ERROR(RangeCheck(offset, size, size_));
  out->resize(size);
  size_t done = 0;
  while (done < size) {
    ssize_t n = ::pread(fd_, out->data() + done, size - done,
                        static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return Status::IoError(std::string("pread: ") + strerror(errno));
    }
    if (n == 0) {
      // Sparse tail of a fresh file: zero-fill, matching MemoryBlockDevice semantics.
      memset(out->data() + done, 0, size - done);
      break;
    }
    done += static_cast<size_t>(n);
  }
  return Status::Ok();
}

Status FileBlockDevice::Write(uint64_t offset, Slice data) {
  HFAD_RETURN_IF_ERROR(RangeCheck(offset, data.size(), size_));
  size_t done = 0;
  while (done < data.size()) {
    ssize_t n = ::pwrite(fd_, data.data() + done, data.size() - done,
                         static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return Status::IoError(std::string("pwrite: ") + strerror(errno));
    }
    done += static_cast<size_t>(n);
  }
  return Status::Ok();
}

Status FileBlockDevice::WriteBatch(std::vector<WriteExtent> extents) {
  std::vector<blockdev_internal::WriteRun> runs =
      blockdev_internal::CoalesceExtents(&extents);
  std::vector<struct iovec> iov;
  for (const auto& run : runs) {
    HFAD_RETURN_IF_ERROR(RangeCheck(run.offset, run.size, size_));
    // One pwritev per IOV_MAX-bounded window of the run's parts; `pos` tracks the
    // device offset of the next unwritten byte across windows and short writes.
    uint64_t pos = run.offset;
    size_t part = 0;
    while (part < run.parts.size()) {
      iov.clear();
      uint64_t window_bytes = 0;
      size_t window_end = std::min(run.parts.size(), part + static_cast<size_t>(IOV_MAX));
      for (size_t i = part; i < window_end; i++) {
        iov.push_back({const_cast<char*>(run.parts[i].data()), run.parts[i].size()});
        window_bytes += run.parts[i].size();
      }
      while (window_bytes > 0) {
        ssize_t n = ::pwritev(fd_, iov.data(), static_cast<int>(iov.size()),
                              static_cast<off_t>(pos));
        if (n < 0) {
          if (errno == EINTR) {
            continue;
          }
          return Status::IoError(std::string("pwritev: ") + strerror(errno));
        }
        pos += static_cast<uint64_t>(n);
        window_bytes -= static_cast<uint64_t>(n);
        if (window_bytes > 0) {
          // Short write: drop fully-written iovecs, trim the partially-written head.
          uint64_t skip = static_cast<uint64_t>(n);
          size_t drop = 0;
          for (; drop < iov.size() && skip >= iov[drop].iov_len; drop++) {
            skip -= iov[drop].iov_len;
          }
          iov.erase(iov.begin(), iov.begin() + static_cast<ptrdiff_t>(drop));
          if (!iov.empty() && skip > 0) {
            iov[0].iov_base = static_cast<char*>(iov[0].iov_base) + skip;
            iov[0].iov_len -= skip;
          }
        }
      }
      part = window_end;
    }
  }
  return Status::Ok();
}

Status FileBlockDevice::Sync() {
  if (::fdatasync(fd_) != 0) {
    return Status::IoError(std::string("fdatasync: ") + strerror(errno));
  }
  return Status::Ok();
}

Status FaultyBlockDevice::Read(uint64_t offset, size_t size, std::string* out) const {
  reads_attempted_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (reads_until_fault_ == 0) {
      if (read_faults_left_ < 0) {
        return Status::IoError("injected persistent read fault");
      }
      if (read_faults_left_ > 0) {
        read_faults_left_--;
        if (read_faults_left_ == 0) {
          reads_until_fault_ = -1;  // Transient fault healed.
        }
        return Status::IoError("injected transient read fault");
      }
      reads_until_fault_ = -1;
    } else if (reads_until_fault_ > 0) {
      reads_until_fault_--;
    }
  }
  return base_->Read(offset, size, out);
}

void FaultyBlockDevice::SetReadFaults(int64_t after_reads, int64_t fail_count) {
  std::lock_guard<std::mutex> lock(mu_);
  reads_until_fault_ = after_reads;
  read_faults_left_ = fail_count;
}

Status FaultyBlockDevice::FlipBit(uint64_t offset, int bit) {
  std::string byte;
  HFAD_RETURN_IF_ERROR(base_->Read(offset, 1, &byte));
  byte[0] = static_cast<char>(byte[0] ^ (1 << (bit & 7)));
  return base_->Write(offset, Slice(byte));
}

Status FaultyBlockDevice::WriteLocked(uint64_t offset, Slice data) {
  writes_attempted_.fetch_add(1, std::memory_order_relaxed);
  if (write_budget_ < 0) {
    return base_->Write(offset, data);
  }
  if (write_budget_ == 0) {
    if (torn_writes_ && !data.empty()) {
      // Persist a deterministic partial prefix once, then fail everything.
      size_t torn = data.size() / 2;
      if (torn > 0) {
        (void)base_->Write(offset, Slice(data.data(), torn));
      }
      torn_writes_ = false;  // Only one torn write per crash.
    }
    return Status::IoError("write budget exhausted (injected crash)");
  }
  write_budget_--;
  return base_->Write(offset, data);
}

Status FaultyBlockDevice::Write(uint64_t offset, Slice data) {
  std::lock_guard<std::mutex> lock(mu_);
  return WriteLocked(offset, data);
}

Status FaultyBlockDevice::WriteBatch(std::vector<WriteExtent> extents) {
  std::vector<blockdev_internal::WriteRun> runs =
      blockdev_internal::CoalesceExtents(&extents);
  std::lock_guard<std::mutex> lock(mu_);
  std::string scratch;
  for (const auto& run : runs) {
    // Each coalesced run consumes one unit of write budget, so a batch can crash between
    // runs (earlier runs durable, later ones lost) or tear inside one (torn_writes).
    scratch.clear();
    scratch.reserve(run.size);
    for (const Slice& part : run.parts) {
      scratch.append(part.data(), part.size());
    }
    HFAD_RETURN_IF_ERROR(WriteLocked(run.offset, Slice(scratch)));
  }
  return Status::Ok();
}

Status FaultyBlockDevice::Sync() {
  syncs_attempted_.fetch_add(1, std::memory_order_relaxed);
  std::function<void()> hook;
  {
    std::lock_guard<std::mutex> lock(mu_);
    hook = sync_hook_;
  }
  if (hook) {
    hook();  // Outside mu_: a parked sync must not block injected writes.
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (write_budget_ == 0) {
    return Status::IoError("sync after injected crash");
  }
  return base_->Sync();
}

void FaultyBlockDevice::SetWriteBudget(int64_t budget) {
  std::lock_guard<std::mutex> lock(mu_);
  write_budget_ = budget;
}

void FaultyBlockDevice::SetSyncHook(std::function<void()> hook) {
  std::lock_guard<std::mutex> lock(mu_);
  sync_hook_ = std::move(hook);
}

}  // namespace hfad
