// Buddy storage allocator (Knuth, TAOCP vol. 1) — the lowest layer of the hFAD OSD (§3.4).
//
// Manages the byte range [region_start, region_start + region_size) of a device in
// power-of-two blocks between kMinBlockSize and the region size. Allocations are rounded up
// to the next power of two; freeing coalesces buddies eagerly. All bookkeeping is in memory;
// Serialize()/Deserialize() produce a compact snapshot (the live-allocation list) that the
// volume persists in its superblock region, from which the free lists are rebuilt on open.
#ifndef HFAD_SRC_STORAGE_BUDDY_ALLOCATOR_H_
#define HFAD_SRC_STORAGE_BUDDY_ALLOCATOR_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace hfad {

class BuddyAllocator {
 public:
  static constexpr uint64_t kMinBlockSize = 4096;  // One page.

  // An allocated extent: device offset and usable length (the rounded power-of-two size).
  struct Extent {
    uint64_t offset = 0;
    uint64_t length = 0;
  };

  // region_size must be a power-of-two multiple of kMinBlockSize; region_start must be
  // kMinBlockSize-aligned and non-zero. Offset 0 is reserved volume-wide (it holds the
  // superblock, and btree/extent roots use 0 as the "empty" sentinel), so the allocator
  // must never be able to hand it out.
  BuddyAllocator(uint64_t region_start, uint64_t region_size);

  // Allocate at least size bytes (rounded up to a power of two >= kMinBlockSize).
  Result<Extent> Allocate(uint64_t size);

  // Free a previously allocated extent by its offset. Coalesces with free buddies.
  Status Free(uint64_t offset);

  // Total bytes currently handed out (sum of rounded block sizes).
  uint64_t allocated_bytes() const;
  // Bytes not handed out.
  uint64_t free_bytes() const;
  // Number of live allocations.
  size_t allocation_count() const;
  // Largest single block currently allocatable (0 if full).
  uint64_t largest_free_block() const;

  // External fragmentation in [0,1]: 1 - largest_free_block / free_bytes (0 when empty/full).
  double ExternalFragmentation() const;

  // Sorted snapshot of live extents (offset ascending). Checkpoints use it to
  // reconcile per-page checksum state against what is actually allocated.
  std::vector<Extent> LiveExtents() const;

  // Snapshot of live allocations (offset, order), suitable for persistence.
  std::string Serialize() const;
  // Rebuild allocator state from a Serialize() snapshot. Region geometry must match.
  Status Deserialize(const std::string& blob);

 private:
  int OrderForSize(uint64_t size) const;
  uint64_t SizeForOrder(int order) const { return kMinBlockSize << order; }
  uint64_t BuddyOf(uint64_t offset, int order) const;
  void RebuildFreeLists();

  const uint64_t region_start_;
  const uint64_t region_size_;
  const int max_order_;

  mutable std::mutex mu_;
  // free_lists_[order] = set of free block offsets of that order.
  std::vector<std::set<uint64_t>> free_lists_;
  // Live allocations: offset -> order.
  std::map<uint64_t, int> allocations_;
  uint64_t allocated_bytes_ = 0;
};

}  // namespace hfad

#endif  // HFAD_SRC_STORAGE_BUDDY_ALLOCATOR_H_
