// Stable-storage abstraction at the bottom of Figure 1.
//
// A BlockDevice is a flat, byte-addressable store with explicit durability (Sync). Three
// implementations:
//   * MemoryBlockDevice — RAM-backed, for tests and benchmarks.
//   * FileBlockDevice   — a single backing file, for persistence across process restarts.
//   * FaultyBlockDevice — wraps another device and injects failures (write caps, torn writes)
//                         for crash-recovery testing of the journal.
#ifndef HFAD_SRC_STORAGE_BLOCK_DEVICE_H_
#define HFAD_SRC_STORAGE_BLOCK_DEVICE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/slice.h"
#include "src/common/status.h"

namespace hfad {

class BlockDevice {
 public:
  virtual ~BlockDevice() = default;

  // Read size bytes at offset into out (resized to size). Reads beyond Size() fail.
  virtual Status Read(uint64_t offset, size_t size, std::string* out) const = 0;

  // Write data at offset. Writes beyond Size() fail (devices have fixed capacity).
  virtual Status Write(uint64_t offset, Slice data) = 0;

  // Force all completed writes to stable storage.
  virtual Status Sync() = 0;

  // Device capacity in bytes.
  virtual uint64_t Size() const = 0;
};

// RAM-backed device. Thread-safe for non-overlapping concurrent access.
class MemoryBlockDevice : public BlockDevice {
 public:
  explicit MemoryBlockDevice(uint64_t size_bytes);

  Status Read(uint64_t offset, size_t size, std::string* out) const override;
  Status Write(uint64_t offset, Slice data) override;
  Status Sync() override { return Status::Ok(); }
  uint64_t Size() const override { return data_.size(); }

 private:
  std::vector<char> data_;
};

// File-backed device. The file is created (and sized) if absent.
class FileBlockDevice : public BlockDevice {
 public:
  // Opens (creating if needed) path with the given capacity.
  static Result<std::unique_ptr<FileBlockDevice>> Open(const std::string& path,
                                                       uint64_t size_bytes);
  ~FileBlockDevice() override;

  Status Read(uint64_t offset, size_t size, std::string* out) const override;
  Status Write(uint64_t offset, Slice data) override;
  Status Sync() override;
  uint64_t Size() const override { return size_; }

 private:
  FileBlockDevice(int fd, uint64_t size) : fd_(fd), size_(size) {}

  int fd_;
  uint64_t size_;
};

// Failure-injection wrapper. After SetWriteBudget(n), the n+1-th write (and all later ones)
// fail with IoError; if torn_writes is enabled the failing write persists only a prefix,
// simulating a crash mid-sector. Used by journal recovery tests.
class FaultyBlockDevice : public BlockDevice {
 public:
  explicit FaultyBlockDevice(std::shared_ptr<BlockDevice> base) : base_(std::move(base)) {}

  Status Read(uint64_t offset, size_t size, std::string* out) const override {
    return base_->Read(offset, size, out);
  }
  Status Write(uint64_t offset, Slice data) override;
  Status Sync() override;
  uint64_t Size() const override { return base_->Size(); }

  // Allow exactly budget more successful writes; -1 means unlimited (default).
  void SetWriteBudget(int64_t budget);
  // When the budget is exhausted, persist a random-length prefix of the failing write.
  void EnableTornWrites(bool enabled) { torn_writes_ = enabled; }
  // Count of writes attempted since construction.
  uint64_t writes_attempted() const { return writes_attempted_; }

 private:
  std::shared_ptr<BlockDevice> base_;
  mutable std::mutex mu_;
  int64_t write_budget_ = -1;
  bool torn_writes_ = false;
  uint64_t writes_attempted_ = 0;
};

}  // namespace hfad

#endif  // HFAD_SRC_STORAGE_BLOCK_DEVICE_H_
