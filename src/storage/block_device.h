// Stable-storage abstraction at the bottom of Figure 1.
//
// A BlockDevice is a flat, byte-addressable store with explicit durability (Sync). Three
// implementations:
//   * MemoryBlockDevice — RAM-backed, for tests and benchmarks.
//   * FileBlockDevice   — a single backing file, for persistence across process restarts.
//   * FaultyBlockDevice — wraps another device and injects failures (write caps, torn
//                         writes, batch tears, slow syncs) for crash-recovery testing of
//                         the journal and checkpoint paths.
//
// Besides single-range Write, every device takes a vectored WriteBatch: the ranges are
// sorted by offset and adjacent ranges coalesce into single device writes, so a checkpoint
// flushing hundreds of scattered-but-clustered dirty pages issues a handful of large
// sequential writes instead of one small write per page (the BlueStore/DAOS write-path
// idiom). Ranges in one batch must be disjoint.
#ifndef HFAD_SRC_STORAGE_BLOCK_DEVICE_H_
#define HFAD_SRC_STORAGE_BLOCK_DEVICE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/slice.h"
#include "src/common/status.h"

namespace hfad {

// One range of a vectored write. `data` must stay valid for the duration of the call.
struct WriteExtent {
  uint64_t offset = 0;
  Slice data;
};

class BlockDevice {
 public:
  virtual ~BlockDevice() = default;

  // Read size bytes at offset into out (resized to size). Reads beyond Size() fail.
  virtual Status Read(uint64_t offset, size_t size, std::string* out) const = 0;

  // Write data at offset. Writes beyond Size() fail (devices have fixed capacity).
  virtual Status Write(uint64_t offset, Slice data) = 0;

  // Write every extent, equivalent to per-extent Write(). Extents are sorted by offset
  // and adjacent extents are coalesced into single device writes; extents must not
  // overlap. Failure may leave any subset of the batch written (a crash mid-batch is a
  // torn batch — journal recovery semantics deal with it). The base implementation
  // sorts, coalesces into scratch buffers, and issues one Write per run; devices with a
  // native vectored path override it.
  virtual Status WriteBatch(std::vector<WriteExtent> extents);

  // Force all completed writes to stable storage.
  virtual Status Sync() = 0;

  // Device capacity in bytes.
  virtual uint64_t Size() const = 0;

  // File descriptor for kernel-submitted IO (io_uring), or -1 when the device has
  // no native fd (memory-backed, fault-injection wrappers). A wrapper device must
  // NOT forward its base's fd: bypassing the wrapper would bypass its semantics.
  virtual int native_fd() const { return -1; }
};

namespace blockdev_internal {

// One coalesced run: parts are offset-adjacent in order, covering [offset, offset+size).
struct WriteRun {
  uint64_t offset = 0;
  uint64_t size = 0;
  std::vector<Slice> parts;
};

// Sort extents by offset, drop empties, and merge adjacent ranges into runs. Counts the
// batch into hfad::stats (kDeviceWriteBatches / kDeviceBatchRuns).
std::vector<WriteRun> CoalesceExtents(std::vector<WriteExtent>* extents);

}  // namespace blockdev_internal

// RAM-backed device. Thread-safe for non-overlapping concurrent access.
class MemoryBlockDevice : public BlockDevice {
 public:
  explicit MemoryBlockDevice(uint64_t size_bytes);

  Status Read(uint64_t offset, size_t size, std::string* out) const override;
  Status Write(uint64_t offset, Slice data) override;
  // Same sort/coalesce accounting as the base, but each extent lands by direct memcpy —
  // no scratch-buffer assembly for multi-part runs.
  Status WriteBatch(std::vector<WriteExtent> extents) override;
  Status Sync() override { return Status::Ok(); }
  uint64_t Size() const override { return data_.size(); }

 private:
  std::vector<char> data_;
};

// File-backed device. The file is created (and sized) if absent.
class FileBlockDevice : public BlockDevice {
 public:
  // Opens (creating if needed) path with the given capacity.
  static Result<std::unique_ptr<FileBlockDevice>> Open(const std::string& path,
                                                       uint64_t size_bytes);
  ~FileBlockDevice() override;

  Status Read(uint64_t offset, size_t size, std::string* out) const override;
  Status Write(uint64_t offset, Slice data) override;
  // One pwritev per coalesced run: the kernel assembles the run from the extents'
  // buffers directly (no copy), and each run is a single contiguous device write.
  Status WriteBatch(std::vector<WriteExtent> extents) override;
  Status Sync() override;
  uint64_t Size() const override { return size_; }
  int native_fd() const override { return fd_; }

 private:
  FileBlockDevice(int fd, uint64_t size) : fd_(fd), size_(size) {}

  int fd_;
  uint64_t size_;
};

// Failure-injection wrapper. After SetWriteBudget(n), the n+1-th write (and all later ones)
// fail with IoError; if torn_writes is enabled the failing write persists only a prefix,
// simulating a crash mid-sector. A WriteBatch counts one write per coalesced run, so the
// budget can exhaust mid-batch: earlier runs persist, the failing run tears, later runs are
// lost — exactly the torn-batch crash the journal watermark must survive. Read faults
// (SetReadFaults) and bit-flip corruption (FlipBit/CorruptRange) model the other two fault
// domains: transient/persistent EIO on read, and latent media corruption the checksum layer
// must catch. Used by journal, checkpoint, and scrub recovery tests.
class FaultyBlockDevice : public BlockDevice {
 public:
  explicit FaultyBlockDevice(std::shared_ptr<BlockDevice> base) : base_(std::move(base)) {}

  Status Read(uint64_t offset, size_t size, std::string* out) const override;
  Status Write(uint64_t offset, Slice data) override;
  Status WriteBatch(std::vector<WriteExtent> extents) override;
  Status Sync() override;
  uint64_t Size() const override { return base_->Size(); }

  // Allow exactly budget more successful writes; -1 means unlimited (default).
  void SetWriteBudget(int64_t budget);
  // When the budget is exhausted, persist a random-length prefix of the failing write.
  void EnableTornWrites(bool enabled) { torn_writes_ = enabled; }
  // Called at the top of every Sync(), before it is applied — park the caller here to
  // model a slow device flush (group-commit tests prove appends proceed meanwhile).
  void SetSyncHook(std::function<void()> hook);
  // Inject read faults: the next reads succeed until `after_reads` more have been
  // served, then the following `fail_count` reads fail with IoError (transient fault
  // that heals), or every later read fails when fail_count is -1 (persistent fault).
  // Passing after_reads = -1 clears injection.
  void SetReadFaults(int64_t after_reads, int64_t fail_count);
  // Flip one bit of the byte at `offset` directly in the base device, bypassing the
  // write budget — models latent media corruption, not a failed IO.
  Status FlipBit(uint64_t offset, int bit);
  // Count of writes attempted since construction (each coalesced batch run counts once).
  uint64_t writes_attempted() const {
    return writes_attempted_.load(std::memory_order_relaxed);
  }
  // Count of Syncs attempted since construction.
  uint64_t syncs_attempted() const {
    return syncs_attempted_.load(std::memory_order_relaxed);
  }
  // Count of Reads attempted since construction.
  uint64_t reads_attempted() const {
    return reads_attempted_.load(std::memory_order_relaxed);
  }

 private:
  // Write's body with mu_ already held.
  Status WriteLocked(uint64_t offset, Slice data);

  std::shared_ptr<BlockDevice> base_;
  mutable std::mutex mu_;
  int64_t write_budget_ = -1;
  bool torn_writes_ = false;
  // Read-fault plan, guarded by mu_ (mutable: Read is const).
  mutable int64_t reads_until_fault_ = -1;  // -1: no injection.
  mutable int64_t read_faults_left_ = 0;    // -1: persistent.
  std::atomic<uint64_t> writes_attempted_{0};
  std::atomic<uint64_t> syncs_attempted_{0};
  mutable std::atomic<uint64_t> reads_attempted_{0};
  std::function<void()> sync_hook_;
};

}  // namespace hfad

#endif  // HFAD_SRC_STORAGE_BLOCK_DEVICE_H_
