#include "src/storage/volume_health.h"

namespace hfad {

std::string_view HealthStateName(HealthState s) {
  switch (s) {
    case HealthState::kHealthy:
      return "healthy";
    case HealthState::kDegraded:
      return "degraded";
    case HealthState::kReadOnly:
      return "read_only";
    case HealthState::kFailed:
      return "failed";
  }
  return "unknown";
}

bool VolumeHealth::Escalate(HealthState to, std::string_view reason) {
  HealthState cur = state_.load(std::memory_order_relaxed);
  while (cur < to) {
    if (state_.compare_exchange_weak(cur, to, std::memory_order_relaxed)) {
      transitions_.fetch_add(1, std::memory_order_relaxed);
      std::lock_guard<std::mutex> lock(reason_mu_);
      reason_ = std::string(HealthStateName(to)) + ": " + std::string(reason);
      return true;
    }
  }
  return false;
}

void VolumeHealth::Reset() {
  state_.store(HealthState::kHealthy, std::memory_order_relaxed);
  transitions_.store(0, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(reason_mu_);
  reason_.clear();
}

std::string VolumeHealth::reason() const {
  std::lock_guard<std::mutex> lock(reason_mu_);
  return reason_;
}

}  // namespace hfad
