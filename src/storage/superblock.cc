#include "src/storage/superblock.h"

#include "src/common/coding.h"
#include "src/common/crc32.h"

namespace hfad {

namespace {

// Serialize one CRC-protected slot of kSlotSize bytes.
std::string EncodeSlot(const Superblock& sb) {
  std::string out;
  out.reserve(Superblock::kSlotSize);
  PutFixed32(&out, Superblock::kMagic);
  PutFixed32(&out, Superblock::kVersion);
  PutFixed64(&out, sb.device_size);
  PutFixed64(&out, sb.alloc_area_offset);
  PutFixed64(&out, sb.alloc_area_size);
  PutFixed64(&out, sb.alloc_snapshot_size);
  PutFixed64(&out, sb.journal_offset);
  PutFixed64(&out, sb.journal_size);
  PutFixed64(&out, sb.heap_offset);
  PutFixed64(&out, sb.heap_size);
  PutFixed64(&out, sb.object_table_root);
  PutFixed64(&out, sb.index_dir_root);
  PutFixed64(&out, sb.next_oid);
  PutFixed64(&out, sb.journal_sequence);
  PutFixed64(&out, sb.cksum_offset);
  PutFixed64(&out, sb.cksum_size);
  PutFixed64(&out, sb.cksum_generation);
  out.resize(Superblock::kSlotSize - 4, 0);
  uint32_t crc = MaskCrc(Crc32c(Slice(out)));
  PutFixed32(&out, crc);
  return out;
}

Result<Superblock> DecodeSlot(const char* data) {
  uint32_t stored_crc = DecodeFixed32(
      reinterpret_cast<const uint8_t*>(data + Superblock::kSlotSize - 4));
  uint32_t actual = Crc32c(Slice(data, Superblock::kSlotSize - 4));
  if (UnmaskCrc(stored_crc) != actual) {
    return Status::Corruption("superblock: CRC mismatch");
  }
  Slice in(data, Superblock::kSlotSize);
  Superblock sb;
  uint32_t magic, version;
  if (!GetFixed32(&in, &magic) || magic != Superblock::kMagic) {
    return Status::Corruption("superblock: bad magic");
  }
  // v2 slots differ only by the absent checksum-region fields; accept both and
  // leave cksum_* zeroed (checksums disabled) for v2.
  if (!GetFixed32(&in, &version) ||
      (version != Superblock::kVersion && version != 2)) {
    return Status::Corruption("superblock: unsupported version");
  }
  bool ok = GetFixed64(&in, &sb.device_size) && GetFixed64(&in, &sb.alloc_area_offset) &&
            GetFixed64(&in, &sb.alloc_area_size) && GetFixed64(&in, &sb.alloc_snapshot_size) &&
            GetFixed64(&in, &sb.journal_offset) && GetFixed64(&in, &sb.journal_size) &&
            GetFixed64(&in, &sb.heap_offset) && GetFixed64(&in, &sb.heap_size) &&
            GetFixed64(&in, &sb.object_table_root) && GetFixed64(&in, &sb.index_dir_root) &&
            GetFixed64(&in, &sb.next_oid) && GetFixed64(&in, &sb.journal_sequence);
  if (ok && version >= 3) {
    ok = GetFixed64(&in, &sb.cksum_offset) && GetFixed64(&in, &sb.cksum_size) &&
         GetFixed64(&in, &sb.cksum_generation);
  }
  if (!ok) {
    return Status::Corruption("superblock: truncated");
  }
  return sb;
}

}  // namespace

std::string Superblock::Encode() const {
  // Two identical slots. A torn superblock write persists a prefix: whatever the tear
  // position, at least one slot is either fully new or fully old, and either one
  // describes a volume the journal can recover.
  std::string slot = EncodeSlot(*this);
  std::string out = slot;
  out += slot;
  return out;
}

namespace {

// Read-compatibility with the v1 layout: one whole-page image, same field order,
// CRC in the page's last 4 bytes. A v1 volume opens normally and is rewritten as v2
// dual-slot by its next checkpoint.
Result<Superblock> DecodeV1(const std::string& buf) {
  uint32_t stored_crc = DecodeFixed32(
      reinterpret_cast<const uint8_t*>(buf.data() + Superblock::kSuperblockSize - 4));
  uint32_t actual = Crc32c(Slice(buf.data(), Superblock::kSuperblockSize - 4));
  if (UnmaskCrc(stored_crc) != actual) {
    return Status::Corruption("superblock: CRC mismatch");
  }
  Slice in(buf);
  Superblock sb;
  uint32_t magic, version;
  if (!GetFixed32(&in, &magic) || magic != Superblock::kMagic) {
    return Status::Corruption("superblock: bad magic");
  }
  if (!GetFixed32(&in, &version) || version != 1) {
    return Status::Corruption("superblock: unsupported version");
  }
  bool ok = GetFixed64(&in, &sb.device_size) && GetFixed64(&in, &sb.alloc_area_offset) &&
            GetFixed64(&in, &sb.alloc_area_size) && GetFixed64(&in, &sb.alloc_snapshot_size) &&
            GetFixed64(&in, &sb.journal_offset) && GetFixed64(&in, &sb.journal_size) &&
            GetFixed64(&in, &sb.heap_offset) && GetFixed64(&in, &sb.heap_size) &&
            GetFixed64(&in, &sb.object_table_root) && GetFixed64(&in, &sb.index_dir_root) &&
            GetFixed64(&in, &sb.next_oid) && GetFixed64(&in, &sb.journal_sequence);
  if (!ok) {
    return Status::Corruption("superblock: truncated");
  }
  return sb;
}

}  // namespace

Result<Superblock> Superblock::Decode(const std::string& buf) {
  if (buf.size() != kSuperblockSize) {
    return Status::Corruption("superblock: wrong size " + std::to_string(buf.size()));
  }
  auto primary = DecodeSlot(buf.data());
  if (primary.ok()) {
    return primary;
  }
  auto replica = DecodeSlot(buf.data() + kSlotSize);
  if (replica.ok()) {
    return replica;
  }
  auto v1 = DecodeV1(buf);
  if (v1.ok()) {
    return v1;
  }
  return primary.status();  // Report the primary slot's failure.
}

}  // namespace hfad
