#include "src/storage/superblock.h"

#include "src/common/coding.h"
#include "src/common/crc32.h"

namespace hfad {

std::string Superblock::Encode() const {
  std::string out;
  out.reserve(kSuperblockSize);
  PutFixed32(&out, kMagic);
  PutFixed32(&out, kVersion);
  PutFixed64(&out, device_size);
  PutFixed64(&out, alloc_area_offset);
  PutFixed64(&out, alloc_area_size);
  PutFixed64(&out, alloc_snapshot_size);
  PutFixed64(&out, journal_offset);
  PutFixed64(&out, journal_size);
  PutFixed64(&out, heap_offset);
  PutFixed64(&out, heap_size);
  PutFixed64(&out, object_table_root);
  PutFixed64(&out, index_dir_root);
  PutFixed64(&out, next_oid);
  PutFixed64(&out, journal_sequence);
  out.resize(kSuperblockSize - 4, 0);
  uint32_t crc = MaskCrc(Crc32c(Slice(out)));
  PutFixed32(&out, crc);
  return out;
}

Result<Superblock> Superblock::Decode(const std::string& buf) {
  if (buf.size() != kSuperblockSize) {
    return Status::Corruption("superblock: wrong size " + std::to_string(buf.size()));
  }
  uint32_t stored_crc = DecodeFixed32(
      reinterpret_cast<const uint8_t*>(buf.data() + kSuperblockSize - 4));
  uint32_t actual = Crc32c(Slice(buf.data(), kSuperblockSize - 4));
  if (UnmaskCrc(stored_crc) != actual) {
    return Status::Corruption("superblock: CRC mismatch");
  }
  Slice in(buf);
  Superblock sb;
  uint32_t magic, version;
  if (!GetFixed32(&in, &magic) || magic != kMagic) {
    return Status::Corruption("superblock: bad magic");
  }
  if (!GetFixed32(&in, &version) || version != kVersion) {
    return Status::Corruption("superblock: unsupported version");
  }
  bool ok = GetFixed64(&in, &sb.device_size) && GetFixed64(&in, &sb.alloc_area_offset) &&
            GetFixed64(&in, &sb.alloc_area_size) && GetFixed64(&in, &sb.alloc_snapshot_size) &&
            GetFixed64(&in, &sb.journal_offset) && GetFixed64(&in, &sb.journal_size) &&
            GetFixed64(&in, &sb.heap_offset) && GetFixed64(&in, &sb.heap_size) &&
            GetFixed64(&in, &sb.object_table_root) && GetFixed64(&in, &sb.index_dir_root) &&
            GetFixed64(&in, &sb.next_oid) && GetFixed64(&in, &sb.journal_sequence);
  if (!ok) {
    return Status::Corruption("superblock: truncated");
  }
  return sb;
}

}  // namespace hfad
