#include "src/storage/checksums.h"

#include <cstring>

#include "src/common/coding.h"
#include "src/common/crc32.h"
#include "src/common/stats.h"

namespace hfad {

namespace {
constexpr uint32_t kChecksumMagic = 0x484b5343;  // "HKSC"
constexpr uint32_t kChecksumVersion = 1;
// magic + version + generation + page_count.
constexpr uint64_t kHeaderSize = 4 + 4 + 8 + 8;
}  // namespace

PageChecksums::PageChecksums(uint64_t device_size, uint64_t page_size)
    : page_size_(page_size),
      entries_((device_size + page_size - 1) / page_size) {}

void PageChecksums::Stamp(uint64_t offset, Slice data) {
  uint64_t idx = offset / page_size_;
  if (idx >= entries_.size()) {
    return;
  }
  uint64_t entry = kValidBit | Crc32c(data);
  entries_[idx].store(entry, std::memory_order_release);
}

Status PageChecksums::Verify(uint64_t offset, Slice data) const {
  uint64_t idx = offset / page_size_;
  if (idx >= entries_.size() || !verify_enabled()) {
    return Status::Ok();
  }
  uint64_t entry = entries_[idx].load(std::memory_order_acquire);
  if (entry & kQuarantineBit) {
    stats::Add(stats::Counter::kChecksumFailures);
    return Status::Corruption("page at offset " + std::to_string(offset) +
                              " is quarantined (scrub-confirmed corruption)");
  }
  if (!(entry & kValidBit)) {
    return Status::Ok();
  }
  stats::Add(stats::Counter::kChecksumVerifies);
  uint32_t expect = static_cast<uint32_t>(entry);
  uint32_t actual = Crc32c(data);
  if (actual != expect) {
    stats::Add(stats::Counter::kChecksumFailures);
    return Status::Corruption("page checksum mismatch at offset " + std::to_string(offset));
  }
  return Status::Ok();
}

bool PageChecksums::HasChecksum(uint64_t offset) const {
  uint64_t idx = offset / page_size_;
  return idx < entries_.size() &&
         (entries_[idx].load(std::memory_order_acquire) & kValidBit) != 0;
}

void PageChecksums::Invalidate(uint64_t offset) {
  uint64_t idx = offset / page_size_;
  if (idx < entries_.size()) {
    entries_[idx].store(0, std::memory_order_release);
  }
}

void PageChecksums::InvalidateRange(uint64_t offset, uint64_t len) {
  if (len == 0) {
    return;
  }
  uint64_t first = offset / page_size_;
  uint64_t last = (offset + len - 1) / page_size_;
  for (uint64_t idx = first; idx <= last && idx < entries_.size(); idx++) {
    entries_[idx].store(0, std::memory_order_release);
  }
}

void PageChecksums::Quarantine(uint64_t offset) {
  uint64_t idx = offset / page_size_;
  if (idx < entries_.size()) {
    entries_[idx].store(kQuarantineBit, std::memory_order_release);
  }
}

bool PageChecksums::IsQuarantined(uint64_t offset) const {
  uint64_t idx = offset / page_size_;
  return idx < entries_.size() &&
         (entries_[idx].load(std::memory_order_acquire) & kQuarantineBit) != 0;
}

std::vector<uint64_t> PageChecksums::QuarantinedPages() const {
  std::vector<uint64_t> out;
  for (uint64_t idx = 0; idx < entries_.size(); idx++) {
    if (entries_[idx].load(std::memory_order_acquire) & kQuarantineBit) {
      out.push_back(idx * page_size_);
    }
  }
  return out;
}

std::string PageChecksums::Serialize(uint64_t generation) const {
  std::string out;
  out.reserve(kHeaderSize + entries_.size() * 8 + 4);
  PutFixed32(&out, kChecksumMagic);
  PutFixed32(&out, kChecksumVersion);
  PutFixed64(&out, generation);
  PutFixed64(&out, entries_.size());
  for (const auto& e : entries_) {
    // Quarantine is runtime state rediscovered by the next scrub; persist the
    // page as plain-invalid so a rewrite after restart starts clean.
    uint64_t v = e.load(std::memory_order_acquire);
    PutFixed64(&out, (v & kQuarantineBit) ? 0 : v);
  }
  PutFixed32(&out, MaskCrc(Crc32c(Slice(out))));
  return out;
}

uint64_t PageChecksums::SerializedSize(uint64_t device_size, uint64_t page_size) {
  uint64_t pages = (device_size + page_size - 1) / page_size;
  return kHeaderSize + pages * 8 + 4;
}

Status PageChecksums::Deserialize(Slice in, uint64_t expected_generation) {
  if (in.size() < kHeaderSize + 4) {
    return Status::Corruption("checksum region truncated");
  }
  Slice body(in.data(), in.size() - 4);
  uint32_t stored_crc =
      UnmaskCrc(DecodeFixed32(reinterpret_cast<const uint8_t*>(in.data() + in.size() - 4)));
  if (Crc32c(body) != stored_crc) {
    return Status::Corruption("checksum region CRC mismatch");
  }
  Slice cursor = body;
  uint32_t magic, version;
  uint64_t generation, page_count;
  if (!GetFixed32(&cursor, &magic) || !GetFixed32(&cursor, &version) ||
      !GetFixed64(&cursor, &generation) || !GetFixed64(&cursor, &page_count)) {
    return Status::Corruption("checksum region header truncated");
  }
  if (magic != kChecksumMagic || version != kChecksumVersion) {
    return Status::Corruption("checksum region bad magic/version");
  }
  if (generation != expected_generation) {
    return Status::InvalidArgument("checksum region generation " + std::to_string(generation) +
                                   " != superblock generation " +
                                   std::to_string(expected_generation));
  }
  if (page_count != entries_.size() || cursor.size() != page_count * 8) {
    return Status::Corruption("checksum region page count mismatch");
  }
  for (uint64_t i = 0; i < page_count; i++) {
    entries_[i].store(DecodeFixed64(reinterpret_cast<const uint8_t*>(cursor.data() + i * 8)),
                      std::memory_order_release);
  }
  return Status::Ok();
}

}  // namespace hfad
