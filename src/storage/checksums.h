// Per-page CRC32C table: the volume's first line of defense against latent
// media corruption (bit rot, misdirected writes, torn sectors that slipped
// past the journal).
//
// Rather than a per-page trailer (which would shrink the usable page payload
// and touch every btree/extent layout), checksums live in a dedicated
// checksum region of the volume: one 64-bit entry per kPageSize page of the
// whole device. The in-memory table is an array of atomics so the pager's
// write-back completion threads can stamp entries while reader threads
// verify, without any lock.
//
// Entry encoding (in memory and on disk):
//   bits  0..31  CRC32C of the page's bytes
//   bit   32     valid — a checksum has been stamped since the last invalidate
//   bit   33     quarantined — scrub confirmed corruption with no clean source;
//                reads must fail loudly until the page is rewritten
//   0            absent — page never stamped (fresh volume, pre-v3 volume, or
//                invalidated by a recovery redo); Verify passes it.
//
// Crash consistency: the table is serialized into the checksum region during
// checkpoint, *before* the superblock commit, and its validity is gated by a
// generation number stored in the (dual-slot, CRC'd) superblock. A crash
// between region write and superblock write leaves a stale generation, the
// table is dropped at Open, and every page degrades to "absent" — unverified
// but never falsely rejected. Journal recovery additionally invalidates the
// entry of every page image it redoes, since those device writes bypass the
// pager's stamping path.
#ifndef HFAD_SRC_STORAGE_CHECKSUMS_H_
#define HFAD_SRC_STORAGE_CHECKSUMS_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/slice.h"
#include "src/common/status.h"

namespace hfad {

class PageChecksums {
 public:
  // Covers a device of device_size bytes at page_size granularity.
  PageChecksums(uint64_t device_size, uint64_t page_size);

  uint64_t page_size() const { return page_size_; }
  uint64_t page_count() const { return entries_.size(); }

  // Record the CRC of the page at `offset` (page-aligned) whose full content is
  // `data` (exactly page_size bytes). Clears any quarantine.
  void Stamp(uint64_t offset, Slice data);

  // Gate verification while journal replay rewrites pages whose entries are
  // legitimately stale: a raw overwrite after the last checkpoint changed device
  // bytes under a still-persisted CRC, and its (force-synced) record has not been
  // re-executed yet. Stamping stays active throughout, so by the time replay
  // finishes the table is consistent and verification turns back on.
  void set_verify_enabled(bool on) { verify_enabled_.store(on, std::memory_order_release); }
  bool verify_enabled() const { return verify_enabled_.load(std::memory_order_acquire); }

  // Verify `data` (the full page at page-aligned `offset`) against the stamped
  // CRC. Ok when no checksum is present; Corruption (and kChecksumFailures)
  // on mismatch or when the page is quarantined.
  Status Verify(uint64_t offset, Slice data) const;

  // True iff a checksum is stamped for the page at `offset`.
  bool HasChecksum(uint64_t offset) const;

  // Drop the entry for one page / every page overlapping [offset, offset+len).
  // Used when raw writes partially touch a page and when recovery redoes page
  // images outside the pager.
  void Invalidate(uint64_t offset);
  void InvalidateRange(uint64_t offset, uint64_t len);

  // Mark the page at `offset` as confirmed-corrupt with no clean source.
  void Quarantine(uint64_t offset);
  bool IsQuarantined(uint64_t offset) const;
  // Page-aligned offsets of all quarantined pages (for fsck reporting).
  std::vector<uint64_t> QuarantinedPages() const;

  // Serialize the whole table: header {magic, version, generation, page_count}
  // + entries + trailing masked CRC32C of everything before it.
  std::string Serialize(uint64_t generation) const;
  // Byte size Serialize() produces for a device of device_size bytes.
  static uint64_t SerializedSize(uint64_t device_size, uint64_t page_size);

  // Load a table previously produced by Serialize(). Fails with Corruption on
  // bad magic/CRC and with InvalidArgument when expected_generation does not
  // match the stored one (stale region after a crash mid-checkpoint).
  Status Deserialize(Slice in, uint64_t expected_generation);

 private:
  static constexpr uint64_t kValidBit = 1ull << 32;
  static constexpr uint64_t kQuarantineBit = 1ull << 33;

  uint64_t page_size_;
  std::atomic<bool> verify_enabled_{true};
  std::vector<std::atomic<uint64_t>> entries_;
};

}  // namespace hfad

#endif  // HFAD_SRC_STORAGE_CHECKSUMS_H_
