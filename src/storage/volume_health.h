// Per-volume health state machine: healthy → degraded → read-only → failed.
//
// Escalation is monotonic — a volume never silently heals back to a better
// state; an operator (or a test) resets it explicitly after repair. The state
// is a single atomic so every OSD entry point can gate on it with one relaxed
// load, and transitions record a reason string for DumpMetrics / logs.
//
// Who drives transitions:
//   kDegraded   checksum mismatch detected (read path or scrub), or a read
//               fault that persisted past the retry policy — data is suspect
//               but mutations are still safe (journal + checkpoint intact).
//   kReadOnly   persistent write/sync/checkpoint failure — durability can no
//               longer be promised, so mutations are rejected with
//               Status::ReadOnly while reads and Finds keep serving.
//   kFailed     the volume cannot even serve reads (superblock unreadable,
//               unrecoverable journal) — every operation is rejected.
#ifndef HFAD_SRC_STORAGE_VOLUME_HEALTH_H_
#define HFAD_SRC_STORAGE_VOLUME_HEALTH_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>

namespace hfad {

enum class HealthState : int {
  kHealthy = 0,
  kDegraded = 1,   // Suspect data detected; serving everything, scrub advised.
  kReadOnly = 2,   // Mutations rejected; reads/Finds still served.
  kFailed = 3,     // Nothing served.
};

std::string_view HealthStateName(HealthState s);

class VolumeHealth {
 public:
  VolumeHealth() = default;

  HealthState state() const { return state_.load(std::memory_order_relaxed); }
  bool writable() const { return state() <= HealthState::kDegraded; }
  bool readable() const { return state() != HealthState::kFailed; }

  // Escalate to `to` (no-op if already at or past it). Records the reason of
  // the first transition into each state. Returns true if this call moved the
  // state forward.
  bool Escalate(HealthState to, std::string_view reason);

  // Operator reset after external repair (tests, future admin surface).
  void Reset();

  // Reason for the most recent forward transition ("" while healthy).
  std::string reason() const;

  // Number of forward transitions since construction/reset.
  uint64_t transitions() const { return transitions_.load(std::memory_order_relaxed); }

 private:
  std::atomic<HealthState> state_{HealthState::kHealthy};
  std::atomic<uint64_t> transitions_{0};
  mutable std::mutex reason_mu_;
  std::string reason_;
};

}  // namespace hfad

#endif  // HFAD_SRC_STORAGE_VOLUME_HEALTH_H_
