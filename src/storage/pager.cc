#include "src/storage/pager.h"

#include <algorithm>
#include <cstring>

#include "src/common/stats.h"

namespace hfad {

namespace {

// One stripe per 64 pages of capacity, at most 16: big caches get read parallelism,
// small (test-sized) caches keep strict global capacity behavior in one stripe.
size_t StripeCountFor(size_t capacity_pages) {
  return std::max<size_t>(1, std::min<size_t>(16, capacity_pages / 64));
}

}  // namespace

Pager::Pager(BlockDevice* device, size_t capacity_pages, bool no_steal)
    : device_(device),
      capacity_(capacity_pages == 0 ? 1 : capacity_pages),
      no_steal_(no_steal),
      stripe_count_(StripeCountFor(capacity_)),
      stripe_capacity_(std::max<size_t>(1, capacity_ / stripe_count_)),
      stripes_(std::make_unique<Stripe[]>(stripe_count_)) {}

Result<PageRef> Pager::Get(uint64_t offset) {
  if (offset % kPageSize != 0) {
    return Status::InvalidArgument("unaligned page offset " + std::to_string(offset));
  }
  Stripe& s = StripeFor(offset);
  {
    // Hit path: shared stripe lock + reference bit — no list maintenance, so
    // concurrent readers never serialize.
    std::shared_lock<std::shared_mutex> lock(s.mu);
    auto it = s.map.find(offset);
    if (it != s.map.end()) {
      stats::Add(stats::Counter::kPagerHits);
      it->second->Touch();
      return it->second;
    }
  }
  std::unique_lock<std::shared_mutex> lock(s.mu);
  auto it = s.map.find(offset);
  if (it != s.map.end()) {
    // Raced with another miss on the same page.
    stats::Add(stats::Counter::kPagerHits);
    it->second->Touch();
    return it->second;
  }
  stats::Add(stats::Counter::kPageReads);
  auto page = std::make_shared<Page>(offset, &dirty_count_);
  std::string buf;
  HFAD_RETURN_IF_ERROR(device_->Read(offset, kPageSize, &buf));
  memcpy(page->data(), buf.data(), kPageSize);
  HFAD_RETURN_IF_ERROR(EvictLocked(s));
  s.map.emplace(offset, page);
  s.ring.push_back(offset);
  return page;
}

Result<PageRef> Pager::GetZeroed(uint64_t offset) {
  if (offset % kPageSize != 0) {
    return Status::InvalidArgument("unaligned page offset " + std::to_string(offset));
  }
  Stripe& s = StripeFor(offset);
  std::unique_lock<std::shared_mutex> lock(s.mu);
  auto it = s.map.find(offset);
  if (it != s.map.end()) {
    // Reuse the cached buffer but reset the contents.
    memset(it->second->data(), 0, kPageSize);
    it->second->MarkDirty();
    it->second->Touch();
    return it->second;
  }
  auto page = std::make_shared<Page>(offset, &dirty_count_);
  page->MarkDirty();
  HFAD_RETURN_IF_ERROR(EvictLocked(s));
  s.map.emplace(offset, page);
  s.ring.push_back(offset);
  return page;
}

Status Pager::EvictLocked(Stripe& s) {
  if (s.map.size() < stripe_capacity_) {
    return Status::Ok();
  }
  // Second-chance sweep. A page still referenced outside the cache (use_count > 1) must
  // not be evicted: the holder may mutate it after eviction and those mutations would be
  // lost. If everything is pinned/recently-used/no-steal-dirty, the sweep budget runs
  // out and the stripe temporarily overflows, which is safe — capacity is a target, not
  // a hard bound.
  size_t budget = 2 * s.ring.size() + 4;
  while (s.map.size() >= stripe_capacity_ && budget-- > 0 && !s.ring.empty()) {
    uint64_t victim = s.ring.front();
    s.ring.pop_front();
    auto it = s.map.find(victim);
    if (it == s.map.end()) {
      continue;  // Stale ring entry (Invalidate'd page).
    }
    PageRef& page = it->second;
    if (page.use_count() > 1) {
      s.ring.push_back(victim);  // Pinned.
      continue;
    }
    if (page->referenced()) {
      page->ClearReferenced();  // Second chance.
      s.ring.push_back(victim);
      continue;
    }
    if (page->dirty()) {
      if (no_steal_) {
        s.ring.push_back(victim);  // Must not reach the device before the checkpoint.
        continue;
      }
      stats::Add(stats::Counter::kPageWrites);
      HFAD_RETURN_IF_ERROR(device_->Write(victim, Slice(page->cdata(), kPageSize)));
      page->ClearDirty();
    }
    s.map.erase(it);
  }
  return Status::Ok();
}

Status Pager::Flush() {
  // Exclude in-flight multi-page structure mutations (see SharedMutationHold) so the
  // write-back is a consistent snapshot.
  std::unique_lock<std::shared_mutex> mutation_barrier(flush_mu_);
  for (size_t i = 0; i < stripe_count_; i++) {
    Stripe& s = stripes_[i];
    std::unique_lock<std::shared_mutex> lock(s.mu);
    for (auto& [offset, page] : s.map) {
      if (page->dirty()) {
        stats::Add(stats::Counter::kPageWrites);
        HFAD_RETURN_IF_ERROR(device_->Write(offset, Slice(page->cdata(), kPageSize)));
        page->ClearDirty();
      }
    }
  }
  return device_->Sync();
}

void Pager::CollectDirty(std::vector<std::pair<uint64_t, std::string>>* out) const {
  std::unique_lock<std::shared_mutex> mutation_barrier(flush_mu_);
  for (size_t i = 0; i < stripe_count_; i++) {
    const Stripe& s = stripes_[i];
    std::shared_lock<std::shared_mutex> lock(s.mu);
    for (const auto& [offset, page] : s.map) {
      if (page->dirty()) {
        out->emplace_back(offset, std::string(page->cdata(), kPageSize));
      }
    }
  }
}

Status Pager::ReadRaw(uint64_t offset, size_t size, std::string* out) const {
  return device_->Read(offset, size, out);
}

Status Pager::WriteRaw(uint64_t offset, Slice data) { return device_->Write(offset, data); }

void Pager::Invalidate(uint64_t offset) {
  Stripe& s = StripeFor(offset);
  std::unique_lock<std::shared_mutex> lock(s.mu);
  auto it = s.map.find(offset);
  if (it != s.map.end()) {
    it->second->ClearDirty();  // Discarded, not deferred: keep the dirty count honest.
    s.map.erase(it);           // The ring entry goes stale; the sweep skips it.
  }
}

Status Pager::DropCacheForTesting() {
  std::unique_lock<std::shared_mutex> mutation_barrier(flush_mu_);
  for (size_t i = 0; i < stripe_count_; i++) {
    Stripe& s = stripes_[i];
    std::unique_lock<std::shared_mutex> lock(s.mu);
    for (auto& [offset, page] : s.map) {
      if (page->dirty()) {
        HFAD_RETURN_IF_ERROR(device_->Write(offset, Slice(page->cdata(), kPageSize)));
        page->ClearDirty();
      }
    }
    s.map.clear();
    s.ring.clear();
  }
  return Status::Ok();
}

size_t Pager::cached_pages() const {
  size_t n = 0;
  for (size_t i = 0; i < stripe_count_; i++) {
    std::shared_lock<std::shared_mutex> lock(stripes_[i].mu);
    n += stripes_[i].map.size();
  }
  return n;
}

}  // namespace hfad
