#include "src/storage/pager.h"

#include <cstring>

#include "src/common/stats.h"

namespace hfad {

Pager::Pager(BlockDevice* device, size_t capacity_pages, bool no_steal)
    : device_(device), capacity_(capacity_pages == 0 ? 1 : capacity_pages),
      no_steal_(no_steal) {}

Result<PageRef> Pager::Get(uint64_t offset) {
  if (offset % kPageSize != 0) {
    return Status::InvalidArgument("unaligned page offset " + std::to_string(offset));
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cache_.find(offset);
  if (it != cache_.end()) {
    stats::Add(stats::Counter::kPagerHits);
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return it->second.page;
  }
  stats::Add(stats::Counter::kPageReads);
  auto page = std::make_shared<Page>(offset);
  std::string buf;
  HFAD_RETURN_IF_ERROR(device_->Read(offset, kPageSize, &buf));
  memcpy(page->data(), buf.data(), kPageSize);
  HFAD_RETURN_IF_ERROR(EvictIfNeededLocked());
  lru_.push_front(offset);
  cache_[offset] = Entry{page, lru_.begin()};
  return page;
}

Result<PageRef> Pager::GetZeroed(uint64_t offset) {
  if (offset % kPageSize != 0) {
    return Status::InvalidArgument("unaligned page offset " + std::to_string(offset));
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cache_.find(offset);
  if (it != cache_.end()) {
    // Reuse the cached buffer but reset the contents.
    memset(it->second.page->data(), 0, kPageSize);
    it->second.page->MarkDirty();
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return it->second.page;
  }
  auto page = std::make_shared<Page>(offset);
  page->MarkDirty();
  HFAD_RETURN_IF_ERROR(EvictIfNeededLocked());
  lru_.push_front(offset);
  cache_[offset] = Entry{page, lru_.begin()};
  return page;
}

Status Pager::EvictIfNeededLocked() {
  // Walk the LRU tail looking for unpinned victims. A page still referenced outside the
  // cache (use_count > 1) must not be evicted: the holder may mutate it after eviction and
  // those mutations would be lost. If everything is pinned the cache temporarily overflows,
  // which is safe — capacity is a target, not a hard bound.
  if (cache_.size() < capacity_) {
    return Status::Ok();
  }
  std::vector<uint64_t> tail_first(lru_.rbegin(), lru_.rend());
  for (uint64_t victim : tail_first) {
    if (cache_.size() < capacity_) {
      break;
    }
    auto cit = cache_.find(victim);
    if (cit == cache_.end() || cit->second.page.use_count() > 1) {
      continue;  // Already gone or pinned.
    }
    if (no_steal_ && cit->second.page->dirty()) {
      continue;  // Dirty pages must not reach the device before the next checkpoint.
    }
    if (cit->second.page->dirty()) {
      stats::Add(stats::Counter::kPageWrites);
      HFAD_RETURN_IF_ERROR(
          device_->Write(victim, Slice(cit->second.page->cdata(), kPageSize)));
      cit->second.page->ClearDirty();
    }
    lru_.erase(cit->second.lru_it);
    cache_.erase(cit);
  }
  return Status::Ok();
}

Status Pager::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [offset, entry] : cache_) {
    if (entry.page->dirty()) {
      stats::Add(stats::Counter::kPageWrites);
      HFAD_RETURN_IF_ERROR(device_->Write(offset, Slice(entry.page->cdata(), kPageSize)));
      entry.page->ClearDirty();
    }
  }
  return device_->Sync();
}

void Pager::CollectDirty(std::vector<std::pair<uint64_t, std::string>>* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [offset, entry] : cache_) {
    if (entry.page->dirty()) {
      out->emplace_back(offset, std::string(entry.page->cdata(), kPageSize));
    }
  }
}

size_t Pager::dirty_pages() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const auto& [offset, entry] : cache_) {
    if (entry.page->dirty()) {
      n++;
    }
  }
  return n;
}

Status Pager::ReadRaw(uint64_t offset, size_t size, std::string* out) const {
  return device_->Read(offset, size, out);
}

Status Pager::WriteRaw(uint64_t offset, Slice data) { return device_->Write(offset, data); }

void Pager::Invalidate(uint64_t offset) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cache_.find(offset);
  if (it != cache_.end()) {
    lru_.erase(it->second.lru_it);
    cache_.erase(it);
  }
}

Status Pager::DropCacheForTesting() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [offset, entry] : cache_) {
    if (entry.page->dirty()) {
      HFAD_RETURN_IF_ERROR(device_->Write(offset, Slice(entry.page->cdata(), kPageSize)));
      entry.page->ClearDirty();
    }
  }
  cache_.clear();
  lru_.clear();
  return Status::Ok();
}

size_t Pager::cached_pages() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cache_.size();
}

}  // namespace hfad
