#include "src/storage/pager.h"

#include <algorithm>
#include <cstring>

#include "src/common/metrics.h"
#include "src/common/stats.h"
#include "src/common/trace.h"
#include "src/io/io_engine.h"
#include "src/storage/checksums.h"
#include "src/storage/volume_health.h"

namespace hfad {

namespace {

// One stripe per 64 pages of capacity, at most 16: big caches get read parallelism,
// small (test-sized) caches keep strict global capacity behavior in one stripe.
size_t StripeCountFor(size_t capacity_pages) {
  return std::max<size_t>(1, std::min<size_t>(16, capacity_pages / 64));
}

}  // namespace

Pager::Pager(BlockDevice* device, size_t capacity_pages, bool no_steal)
    : device_(device),
      capacity_(capacity_pages == 0 ? 1 : capacity_pages),
      no_steal_(no_steal),
      stripe_count_(StripeCountFor(capacity_)),
      stripe_capacity_(std::max<size_t>(1, capacity_ / stripe_count_)),
      stripes_(std::make_unique<Stripe[]>(stripe_count_)) {}

Pager::~Pager() {
  // In-flight async write-back completions dereference stripes_; wait them out.
  // (Engines owned above the pager are shut down first, which drives this to
  // zero before we are ever entered.)
  std::unique_lock<std::mutex> lock(wb_mu_);
  wb_cv_.wait(lock, [&] { return pending_writebacks_ == 0; });
}

void Pager::SetIoEngine(io::IoEngine* engine) {
  std::lock_guard<std::mutex> lock(wb_mu_);
  engine_ = engine;
}

void Pager::AwaitPendingWritebacks() const {
  std::unique_lock<std::mutex> lock(wb_mu_);
  wb_cv_.wait(lock, [&] { return pending_writebacks_ == 0; });
}

std::shared_lock<std::shared_mutex> Pager::LockStripeShared(const Stripe& s) const {
  std::shared_lock<std::shared_mutex> lock(s.mu, std::try_to_lock);
  if (!lock.owns_lock()) {
    s.contentions.fetch_add(1, std::memory_order_relaxed);
    stats::Add(stats::Counter::kLockContentions);
    lock.lock();
  }
  s.acquisitions.fetch_add(1, std::memory_order_relaxed);
  return lock;
}

std::unique_lock<std::shared_mutex> Pager::LockStripeExclusive(const Stripe& s) const {
  std::unique_lock<std::shared_mutex> lock(s.mu, std::try_to_lock);
  if (!lock.owns_lock()) {
    s.contentions.fetch_add(1, std::memory_order_relaxed);
    stats::Add(stats::Counter::kLockContentions);
    lock.lock();
  }
  s.acquisitions.fetch_add(1, std::memory_order_relaxed);
  return lock;
}

std::vector<Pager::StripeLockStat> Pager::TopContendedStripes(size_t n) const {
  std::vector<StripeLockStat> all;
  for (size_t i = 0; i < stripe_count_; i++) {
    uint64_t c = stripes_[i].contentions.load(std::memory_order_relaxed);
    if (c == 0) {
      continue;
    }
    all.push_back({i, stripes_[i].acquisitions.load(std::memory_order_relaxed), c});
  }
  std::sort(all.begin(), all.end(),
            [](const StripeLockStat& a, const StripeLockStat& b) {
              return a.contentions != b.contentions ? a.contentions > b.contentions
                                                    : a.stripe < b.stripe;
            });
  if (all.size() > n) {
    all.resize(n);
  }
  return all;
}

uint64_t Pager::stripe_lock_acquisitions() const {
  uint64_t n = 0;
  for (size_t i = 0; i < stripe_count_; i++) {
    n += stripes_[i].acquisitions.load(std::memory_order_relaxed);
  }
  return n;
}

uint64_t Pager::stripe_lock_contentions() const {
  uint64_t n = 0;
  for (size_t i = 0; i < stripe_count_; i++) {
    n += stripes_[i].contentions.load(std::memory_order_relaxed);
  }
  return n;
}

Result<PageRef> Pager::Get(uint64_t offset) {
  if (offset % kPageSize != 0) {
    return Status::InvalidArgument("unaligned page offset " + std::to_string(offset));
  }
  Stripe& s = StripeFor(offset);
  {
    // Hit path: shared stripe lock + reference bit — no list maintenance, so
    // concurrent readers never serialize. Deliberately not histogrammed: only
    // misses pay a latency worth attributing, and keeping the hit path at one
    // counter bump is what lets the instrumentation stay on in Release.
    std::shared_lock<std::shared_mutex> lock = LockStripeShared(s);
    auto it = s.map.find(offset);
    if (it != s.map.end()) {
      stats::Add(stats::Counter::kPagerHits);
      it->second->Touch();
      return it->second;
    }
  }
  // Miss: read the device BEFORE taking the stripe exclusively — no device IO under
  // stripe locks (and so no lock held across a retry backoff). A racing miss on the
  // same offset wins harmlessly (we drop our copy).
  stats::Add(stats::Counter::kPageReads);
  metrics::ScopedLatency latency(metrics::Hist::kPageRead);
  trace::SpanScope span("page_read");
  std::string buf;
  Status read = retry_.RunWithRetry([&] { return device_->Read(offset, kPageSize, &buf); });
  if (!read.ok()) {
    if (health_ != nullptr && retry_.IsTransient(read)) {
      health_->Escalate(HealthState::kDegraded,
                        "read fault persisted past retry at offset " + std::to_string(offset));
    }
    return read;
  }
  if (checksums_ != nullptr) {
    Status verify = checksums_->Verify(offset, Slice(buf));
    if (!verify.ok()) {
      if (health_ != nullptr) {
        health_->Escalate(HealthState::kDegraded, verify.message());
      }
      return verify;
    }
  }
  std::vector<Writeback> writeback;
  PageRef page;
  {
    std::unique_lock<std::shared_mutex> lock = LockStripeExclusive(s);
    auto it = s.map.find(offset);
    if (it != s.map.end()) {
      // Raced with another miss on the same page.
      stats::Add(stats::Counter::kPagerHits);
      it->second->Touch();
      return it->second;
    }
    page = std::make_shared<Page>(offset, &dirty_count_);
    memcpy(page->data(), buf.data(), kPageSize);
    EvictLocked(s, &writeback);
    s.map.emplace(offset, page);
    s.ring.push_back(offset);
  }
  HFAD_RETURN_IF_ERROR(FlushWriteback(s, &writeback));
  return page;
}

PageRef Pager::Peek(uint64_t offset) const {
  if (offset % kPageSize != 0) {
    return nullptr;
  }
  const Stripe& s = StripeFor(offset);
  std::shared_lock<std::shared_mutex> lock = LockStripeShared(s);
  auto it = s.map.find(offset);
  return it != s.map.end() ? it->second : nullptr;
}

Result<PageRef> Pager::GetZeroed(uint64_t offset) {
  if (offset % kPageSize != 0) {
    return Status::InvalidArgument("unaligned page offset " + std::to_string(offset));
  }
  Stripe& s = StripeFor(offset);
  std::vector<Writeback> writeback;
  PageRef page;
  {
    std::unique_lock<std::shared_mutex> lock = LockStripeExclusive(s);
    auto it = s.map.find(offset);
    if (it != s.map.end()) {
      // Reuse the cached buffer but reset the contents.
      memset(it->second->data(), 0, kPageSize);
      it->second->MarkDirty();
      it->second->Touch();
      return it->second;
    }
    page = std::make_shared<Page>(offset, &dirty_count_);
    page->MarkDirty();
    EvictLocked(s, &writeback);
    s.map.emplace(offset, page);
    s.ring.push_back(offset);
  }
  HFAD_RETURN_IF_ERROR(FlushWriteback(s, &writeback));
  return page;
}

void Pager::EvictLocked(Stripe& s, std::vector<Writeback>* writeback) {
  if (s.map.size() < stripe_capacity_) {
    return;
  }
  // Second-chance sweep, clean victims first. A page still referenced outside the cache
  // (use_count > 1) must not be evicted: the holder may mutate it after eviction and
  // those mutations would be lost. Dirty victims are not written here — device IO never
  // happens under a stripe lock. Instead their images are snapshotted for the caller's
  // batched write-back (FlushWriteback) and the pages stay resident; parking them on a
  // side list keeps this sweep from re-snapshotting the same page. If everything is
  // pinned/recently-used/no-steal-dirty, the sweep budget runs out and the stripe
  // temporarily overflows, which is safe — capacity is a target, not a hard bound.
  std::vector<uint64_t> parked;
  size_t budget = 2 * s.ring.size() + 4;
  while (s.map.size() >= stripe_capacity_ && budget-- > 0 && !s.ring.empty()) {
    uint64_t victim = s.ring.front();
    s.ring.pop_front();
    auto it = s.map.find(victim);
    if (it == s.map.end()) {
      continue;  // Stale ring entry (Invalidate'd page).
    }
    PageRef& page = it->second;
    if (page.use_count() > 1) {
      s.ring.push_back(victim);  // Pinned.
      continue;
    }
    if (page->referenced()) {
      page->ClearReferenced();  // Second chance.
      s.ring.push_back(victim);
      continue;
    }
    if (page->dirty()) {
      if (!no_steal_ && writeback != nullptr) {
        // Epoch + image snapshot under the lock (use_count == 1, so nobody is mutating
        // the buffer right now); the write itself happens after the lock drops. The
        // held PageRef pins the victim against rival sweeps until FlushWriteback runs.
        writeback->push_back(
            Writeback{page, page->epoch(), std::string(page->cdata(), kPageSize)});
      }
      parked.push_back(victim);  // No-steal: must not reach the device before checkpoint.
      continue;
    }
    s.map.erase(it);
  }
  for (uint64_t offset : parked) {
    s.ring.push_back(offset);
  }
}

Status Pager::FlushWriteback(Stripe& s, std::vector<Writeback>* writeback) {
  if (writeback->empty()) {
    return Status::Ok();
  }
  // Exclude a concurrent Flush/CollectDirty snapshot without blocking: if one is
  // running (or our own caller already holds the mutation lock and a writer is
  // queued), skip the device IO entirely — the snapshot persists these pages itself,
  // or a later sweep simply retries. Blocking here could deadlock against a caller's
  // own SharedMutationHold, so try_to_lock is load-bearing.
  std::shared_lock<std::shared_mutex> snapshot_guard(flush_mu_, std::try_to_lock);
  if (snapshot_guard.owns_lock()) {
    if (engine_ != nullptr) {
      // Completion-driven write-back: submit and return — the evicting thread
      // never waits out device IO. pending_writebacks_ is incremented while
      // flush_mu_ is still held shared, so an exclusive snapshotter (Flush /
      // CollectDirty) that gets the lock after us is guaranteed to see — and
      // drain — this batch before reading dirty bits.
      auto st = std::make_shared<WritebackBatch>();
      st->items = std::move(*writeback);
      writeback->clear();
      std::vector<WriteExtent> extents;
      extents.reserve(st->items.size());
      for (const Writeback& w : st->items) {
        extents.push_back(WriteExtent{w.page->offset(), Slice(w.image)});
      }
      stats::Add(stats::Counter::kPageWrites, st->items.size());
      {
        std::lock_guard<std::mutex> wb_lock(wb_mu_);
        pending_writebacks_++;
      }
      io::IoRequest req;
      req.op = io::IoOp::kWritev;
      req.extents = std::move(extents);
      Stripe* stripe = &s;  // Stable: stripes_ is a fixed array member.
      req.on_complete = [this, st, stripe](io::IoCompletion c) {
        WritebackDone(*stripe, st, c.status);
      };
      auto h = engine_->Submit(std::move(req));
      if (!h.ok()) {
        WritebackDone(s, std::move(st), h.status());
      }
      return Status::Ok();
    }
    stats::Add(stats::Counter::kPageWrites, writeback->size());
    Status wrote = retry_.RunWithRetry([&] {
      std::vector<WriteExtent> extents;
      extents.reserve(writeback->size());
      for (const Writeback& w : *writeback) {
        extents.push_back(WriteExtent{w.page->offset(), Slice(w.image)});
      }
      return device_->WriteBatch(std::move(extents));
    });
    HFAD_RETURN_IF_ERROR(wrote);
    if (checksums_ != nullptr) {
      // Stamp the snapshotted images unconditionally: the device now holds exactly
      // these bytes even for pages re-dirtied since the snapshot (their newer content
      // gets written — and restamped — by a later sweep or Flush).
      for (const Writeback& w : *writeback) {
        checksums_->Stamp(w.page->offset(), Slice(w.image));
      }
    }
    std::unique_lock<std::shared_mutex> lock = LockStripeExclusive(s);
    for (const Writeback& w : *writeback) {
      auto it = s.map.find(w.page->offset());
      if (it == s.map.end() || it->second != w.page) {
        continue;  // Invalidated (and possibly replaced) mid-IO; nothing to clean.
      }
      // use_count == 2 is exactly {map, this Writeback}: nobody else can have mutated
      // the buffer after the epoch check below.
      if (w.page.use_count() > 2 || w.page->epoch() != w.epoch) {
        continue;  // Pinned or re-dirtied since the snapshot: stays dirty, written later.
      }
      w.page->ClearDirty();
      if (s.map.size() >= stripe_capacity_ && !w.page->referenced()) {
        s.map.erase(it);  // The ring entry goes stale; the sweep skips it.
      }
    }
  }
  writeback->clear();  // Drop the pins.
  return Status::Ok();
}

void Pager::WritebackDone(Stripe& s, std::shared_ptr<WritebackBatch> st,
                          Status status) {
  if (!status.ok() && engine_ != nullptr && retry_.ShouldRetry(status, st->attempts)) {
    // Completion-thread retry: resubmit immediately (never sleep here — backoff
    // would stall the engine's completion loop). The batch stays counted in
    // pending_writebacks_, so an exclusive Flush keeps draining it before
    // snapshotting dirty bits.
    st->attempts++;
    std::vector<WriteExtent> extents;
    extents.reserve(st->items.size());
    for (const Writeback& w : st->items) {
      extents.push_back(WriteExtent{w.page->offset(), Slice(w.image)});
    }
    io::IoRequest req;
    req.op = io::IoOp::kWritev;
    req.extents = std::move(extents);
    Stripe* stripe = &s;
    req.on_complete = [this, st, stripe](io::IoCompletion c) {
      WritebackDone(*stripe, st, c.status);
    };
    auto h = engine_->Submit(std::move(req));
    if (h.ok()) {
      return;
    }
    status = h.status();  // Resubmission itself failed: give up below.
  }
  if (status.ok()) {
    if (checksums_ != nullptr) {
      // Same rationale as the synchronous path: the device holds these images now.
      for (const Writeback& w : st->items) {
        checksums_->Stamp(w.page->offset(), Slice(w.image));
      }
    }
    // Identical validation to the synchronous path — the only difference is which
    // thread runs it. Stripe locks are leaves, so taking one on a completion
    // thread cannot deadlock (docs/CONCURRENCY.md).
    std::unique_lock<std::shared_mutex> lock = LockStripeExclusive(s);
    for (const Writeback& w : st->items) {
      auto it = s.map.find(w.page->offset());
      if (it == s.map.end() || it->second != w.page) {
        continue;  // Invalidated (and possibly replaced) mid-IO; nothing to clean.
      }
      // use_count == 2 is exactly {map, this WritebackBatch}.
      if (w.page.use_count() > 2 || w.page->epoch() != w.epoch) {
        continue;  // Pinned or re-dirtied since the snapshot: stays dirty, written later.
      }
      w.page->ClearDirty();
      if (s.map.size() >= stripe_capacity_ && !w.page->referenced()) {
        s.map.erase(it);  // The ring entry goes stale; the sweep skips it.
      }
    }
  }
  st->items.clear();  // Drop the pins.
  if (!status.ok()) {
    stats::Add(stats::Counter::kPagerWritebackErrors);
  }
  {
    std::lock_guard<std::mutex> wb_lock(wb_mu_);
    pending_writebacks_--;
    if (!status.ok() && writeback_error_.ok()) {
      writeback_error_ = status;  // Sticky; the pages stay dirty and retry later.
    }
  }
  wb_cv_.notify_all();
}

Status Pager::Flush() {
  // Exclude in-flight multi-page structure mutations (see SharedMutationHold) so the
  // write-back is a consistent snapshot. Content stability while we write without the
  // stripe locks comes from the same exclusion (plus volume_mu_ at the OSD layer).
  std::unique_lock<std::shared_mutex> mutation_barrier(flush_mu_);
  // A stale async write-back completing AFTER this flush could clear the dirty
  // bit of a page whose latest content only this flush wrote — losing the next
  // rewrite. Drain first: no new batch can be submitted while we hold flush_mu_
  // exclusive (submission requires it shared).
  AwaitPendingWritebacks();
  std::vector<PageRef> dirty;
  for (size_t i = 0; i < stripe_count_; i++) {
    Stripe& s = stripes_[i];
    std::shared_lock<std::shared_mutex> lock = LockStripeShared(s);
    for (auto& [offset, page] : s.map) {
      if (page->dirty()) {
        dirty.push_back(page);
      }
    }
  }
  if (!dirty.empty()) {
    stats::Add(stats::Counter::kPageWrites, dirty.size());
    Status wrote = retry_.RunWithRetry([&]() -> Status {
      std::vector<WriteExtent> extents;
      extents.reserve(dirty.size());
      for (const PageRef& page : dirty) {
        extents.push_back(WriteExtent{page->offset(), Slice(page->cdata(), kPageSize)});
      }
      if (engine_ != nullptr) {
        // Blocking by contract, but carried by the engine: one IO path for gauges
        // and fault injection, and identical device-op counts either way.
        io::IoRequest batch;
        batch.op = io::IoOp::kWritev;
        batch.extents = std::move(extents);
        return io::SubmitAndWait(engine_, std::move(batch));
      }
      return device_->WriteBatch(std::move(extents));
    });
    HFAD_RETURN_IF_ERROR(wrote);
    for (const PageRef& page : dirty) {
      if (checksums_ != nullptr) {
        // Safe to stamp from the live buffer: flush_mu_ is held exclusive, so no
        // mutator can change page content between the device write and this stamp.
        checksums_->Stamp(page->offset(), Slice(page->cdata(), kPageSize));
      }
      page->ClearDirty();
    }
  }
  return retry_.RunWithRetry([&]() -> Status {
    if (engine_ != nullptr) {
      io::IoRequest sync;
      sync.op = io::IoOp::kSync;
      return io::SubmitAndWait(engine_, std::move(sync));
    }
    return device_->Sync();
  });
}

void Pager::CollectDirty(std::vector<std::pair<uint64_t, std::string>>* out) const {
  std::unique_lock<std::shared_mutex> mutation_barrier(flush_mu_);
  // A completion racing this snapshot could clear dirty bits mid-collection;
  // drain so the checkpoint epilogue sees a stable dirty set. (Journaled volumes
  // run no-steal, so in practice the pending count is already zero here.)
  AwaitPendingWritebacks();
  std::vector<PageRef> dirty;
  for (size_t i = 0; i < stripe_count_; i++) {
    const Stripe& s = stripes_[i];
    std::shared_lock<std::shared_mutex> lock = LockStripeShared(s);
    for (const auto& [offset, page] : s.map) {
      if (page->dirty()) {
        dirty.push_back(page);
      }
    }
  }
  // The 4-KiB image copies happen outside the stripe locks; the mutation barrier (and
  // volume_mu_ at the OSD layer) keeps the buffers stable meanwhile.
  out->reserve(out->size() + dirty.size());
  for (const PageRef& page : dirty) {
    out->emplace_back(page->offset(), std::string(page->cdata(), kPageSize));
  }
}

Status Pager::ReadRaw(uint64_t offset, size_t size, std::string* out) const {
  Status read = retry_.RunWithRetry([&] { return device_->Read(offset, size, out); });
  if (!read.ok()) {
    if (health_ != nullptr && retry_.IsTransient(read)) {
      health_->Escalate(HealthState::kDegraded,
                        "raw read fault persisted past retry at offset " +
                            std::to_string(offset));
    }
    return read;
  }
  if (checksums_ != nullptr) {
    // Verify every page the read touches. Fully contained pages check straight from
    // the buffer; partially covered head/tail pages that carry an entry (or are
    // quarantined) are read back whole — one extra page read per boundary, only when
    // there is actually something to check, so a bit flip in the uncovered half of a
    // boundary page can never ride out silently.
    uint64_t first = offset / kPageSize * kPageSize;
    uint64_t end = offset + size;
    for (uint64_t page = first; page < end; page += kPageSize) {
      Status verify;
      if (page >= offset && page + kPageSize <= end) {
        verify = checksums_->Verify(page, Slice(out->data() + (page - offset), kPageSize));
      } else if (checksums_->HasChecksum(page) || checksums_->IsQuarantined(page)) {
        std::string full;
        verify = retry_.RunWithRetry([&] { return device_->Read(page, kPageSize, &full); });
        if (verify.ok()) {
          verify = checksums_->Verify(page, Slice(full));
        }
      }
      if (!verify.ok()) {
        if (health_ != nullptr) {
          health_->Escalate(HealthState::kDegraded, verify.message());
        }
        return verify;
      }
    }
  }
  return Status::Ok();
}

Status Pager::WriteRaw(uint64_t offset, Slice data) {
  Status wrote = retry_.RunWithRetry([&] { return device_->Write(offset, data); });
  if (!wrote.ok() || checksums_ == nullptr || data.empty()) {
    return wrote;
  }
  // Keep the CRC table in step with the raw write: fully covered pages are stamped
  // straight from the payload; partially covered head/tail pages are read back (the
  // device now holds the merged content — raw ranges belong to exactly one extent
  // owner, so nothing races the read-back) and stamped whole.
  uint64_t first_page = offset / kPageSize * kPageSize;
  uint64_t end = offset + data.size();
  for (uint64_t page = first_page; page < end; page += kPageSize) {
    if (page >= offset && page + kPageSize <= end) {
      checksums_->Stamp(page, Slice(data.data() + (page - offset), kPageSize));
      continue;
    }
    std::string merged;
    if (device_->Read(page, kPageSize, &merged).ok()) {
      checksums_->Stamp(page, Slice(merged));
    } else {
      checksums_->Invalidate(page);  // Unverifiable now; the scrubber restamps later.
    }
  }
  return Status::Ok();
}

void Pager::Invalidate(uint64_t offset) {
  Stripe& s = StripeFor(offset);
  std::unique_lock<std::shared_mutex> lock = LockStripeExclusive(s);
  auto it = s.map.find(offset);
  if (it != s.map.end()) {
    it->second->ClearDirty();  // Discarded, not deferred: keep the dirty count honest.
    s.map.erase(it);           // The ring entry goes stale; the sweep skips it.
  }
}

Status Pager::DropCacheForTesting() {
  std::unique_lock<std::shared_mutex> mutation_barrier(flush_mu_);
  AwaitPendingWritebacks();  // Same stale-completion hazard as Flush.
  std::vector<PageRef> dirty;
  for (size_t i = 0; i < stripe_count_; i++) {
    Stripe& s = stripes_[i];
    std::shared_lock<std::shared_mutex> lock = LockStripeShared(s);
    for (auto& [offset, page] : s.map) {
      if (page->dirty()) {
        dirty.push_back(page);
      }
    }
  }
  if (!dirty.empty()) {
    std::vector<WriteExtent> extents;
    extents.reserve(dirty.size());
    for (const PageRef& page : dirty) {
      extents.push_back(WriteExtent{page->offset(), Slice(page->cdata(), kPageSize)});
    }
    HFAD_RETURN_IF_ERROR(device_->WriteBatch(std::move(extents)));
    for (const PageRef& page : dirty) {
      if (checksums_ != nullptr) {
        checksums_->Stamp(page->offset(), Slice(page->cdata(), kPageSize));
      }
      page->ClearDirty();
    }
  }
  for (size_t i = 0; i < stripe_count_; i++) {
    Stripe& s = stripes_[i];
    std::unique_lock<std::shared_mutex> lock = LockStripeExclusive(s);
    s.map.clear();
    s.ring.clear();
  }
  return Status::Ok();
}

size_t Pager::cached_pages() const {
  size_t n = 0;
  for (size_t i = 0; i < stripe_count_; i++) {
    std::shared_lock<std::shared_mutex> lock = LockStripeShared(stripes_[i]);
    n += stripes_[i].map.size();
  }
  return n;
}

}  // namespace hfad
