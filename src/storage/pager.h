// Pager: a striped page cache between the btrees and the block device.
//
// Pages are 4 KiB, identified by their byte offset on the device (always page-aligned —
// the buddy allocator's minimum block is one page). The cache is striped by page offset
// into independently locked stripes (the same lock-striping idiom as
// common/sharded_lock.h — see docs/CONCURRENCY.md): a cache hit takes its stripe's lock
// *shared* and sets a second-chance reference bit, so concurrent readers of disjoint —
// or even the same — pages never serialize on a global cache mutex. Only misses,
// zero-fills, and eviction take a stripe exclusively. Eviction is per-stripe
// second-chance FIFO (CLOCK): approximate LRU that needs no list splice on the hit
// path. The stripe count adapts to capacity (one stripe per 64 pages, at most 16) so
// small caches keep strict global capacity behavior.
//
// No device IO ever happens under a stripe lock. Flush and CollectDirty snapshot the
// dirty set per stripe, drop the lock, and issue ONE sorted WriteBatch (adjacent pages
// coalesce into single device writes). Eviction prefers clean victims; when only dirty
// victims remain it leaves them resident, write-backs them in a batch after the stripe
// lock is released, and clears their dirty bits only if the page's mutation epoch is
// unchanged — a page re-dirtied mid-IO simply stays dirty and is written again later.
//
// Hits/misses/write-backs are counted in hfad::stats so benchmarks can report IO
// amplification. Page *content* synchronization remains the responsibility of the
// owning structure (each btree holds its own lock), matching the paper's argument that
// locking should live in the index, not a shared namespace.
#ifndef HFAD_SRC_STORAGE_PAGER_H_
#define HFAD_SRC_STORAGE_PAGER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/retry.h"
#include "src/common/status.h"
#include "src/storage/block_device.h"

namespace hfad {

class PageChecksums;
class VolumeHealth;

namespace io {
class IoEngine;
}  // namespace io

constexpr size_t kPageSize = 4096;

// A cached page buffer. Access content through data(); call MarkDirty() after mutating.
class Page {
 public:
  // `dirty_counter`, when set, tracks the number of dirty pages across the owning
  // cache — maintained here because content owners mark pages dirty directly.
  explicit Page(uint64_t offset, std::atomic<int64_t>* dirty_counter = nullptr)
      : offset_(offset), dirty_counter_(dirty_counter) {
    buf_.resize(kPageSize);
  }

  uint64_t offset() const { return offset_; }
  uint8_t* data() { return reinterpret_cast<uint8_t*>(buf_.data()); }
  const uint8_t* data() const { return reinterpret_cast<const uint8_t*>(buf_.data()); }
  char* cdata() { return buf_.data(); }
  const char* cdata() const { return buf_.data(); }

  void MarkDirty() {
    // The epoch lets eviction validate a lock-free write-back: it bumps on EVERY mark,
    // so "epoch unchanged" means "no mutation since the write-back snapshot".
    epoch_.fetch_add(1, std::memory_order_acq_rel);
    if (!dirty_.exchange(true, std::memory_order_acq_rel) && dirty_counter_ != nullptr) {
      dirty_counter_->fetch_add(1, std::memory_order_relaxed);
    }
  }
  bool dirty() const { return dirty_.load(std::memory_order_acquire); }
  void ClearDirty() {
    if (dirty_.exchange(false, std::memory_order_acq_rel) && dirty_counter_ != nullptr) {
      dirty_counter_->fetch_sub(1, std::memory_order_relaxed);
    }
  }

  // Mutation epoch (see MarkDirty).
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  // Second-chance (CLOCK) reference bit, settable under a shared stripe lock.
  void Touch() { referenced_.store(true, std::memory_order_relaxed); }
  bool referenced() const { return referenced_.load(std::memory_order_relaxed); }
  void ClearReferenced() { referenced_.store(false, std::memory_order_relaxed); }

 private:
  const uint64_t offset_;
  std::string buf_;
  std::atomic<bool> dirty_{false};
  std::atomic<bool> referenced_{false};
  std::atomic<uint64_t> epoch_{0};
  std::atomic<int64_t>* const dirty_counter_;
};

using PageRef = std::shared_ptr<Page>;

class Pager {
 public:
  // capacity_pages bounds the cache; evicted dirty pages are written back first.
  //
  // With no_steal = true the pager never writes a dirty page back on eviction: dirty pages
  // stay cached (the cache may exceed capacity) until an explicit Flush(). This is the
  // no-steal buffer policy the journaled OSD depends on — between checkpoints the on-disk
  // state is exactly the last checkpoint, so crash recovery can replay the journal onto it.
  Pager(BlockDevice* device, size_t capacity_pages, bool no_steal = false);

  // Waits out in-flight async write-backs (their completions touch the stripes).
  // Callers owning an IoEngine must destroy (or Shutdown) the engine first.
  ~Pager();

  // Route write-back IO through `engine` (null reverts to synchronous device
  // calls). Eviction write-back becomes completion-driven: the sweep submits the
  // sorted coalesced batch and returns; dirty bits are cleared on the completion
  // thread under the existing epoch validation. Flush() stays synchronous to its
  // caller but carries its batch + sync through the engine so fault injection and
  // io gauges see one code path. Call before the pager is shared across threads.
  void SetIoEngine(io::IoEngine* engine);

  // First error from an async eviction write-back, sticky. Not a data-loss signal:
  // the victims' dirty bits stay set, so a later sweep or Flush rewrites them; the
  // accessor exists so callers can surface repeated device trouble.
  Status writeback_error() const {
    std::lock_guard<std::mutex> lock(wb_mu_);
    return writeback_error_;
  }

  // Attach the volume's per-page CRC table (null disables, the default). Every miss
  // read and raw read verifies against it; every successful device write of page
  // content (Flush, eviction write-back, WriteRaw) stamps it. Call before the pager
  // is shared across threads; the table must outlive the pager.
  void SetChecksums(PageChecksums* checksums) { checksums_ = checksums; }
  PageChecksums* checksums() const { return checksums_; }

  // Attach the volume health to escalate on checksum mismatches and reads that stay
  // failed past the retry policy (null disables, the default).
  void SetVolumeHealth(VolumeHealth* health) { health_ = health; }

  // Retry policy for transient device IO errors on the miss-read, raw-IO, flush,
  // and write-back paths. Sync paths back off and retry in place (no stripe lock is
  // ever held across device IO, so none is held across a backoff sleep); async
  // write-back completions resubmit without sleeping.
  void SetRetryPolicy(const RetryPolicy& policy) { retry_ = policy; }

  // Fetch the page at the given byte offset (must be page-aligned), reading on miss.
  Result<PageRef> Get(uint64_t offset);

  // The cached page at offset, or null when not resident. Never touches the device —
  // the scrubber uses this to ask "is there a clean cached copy to repair from?"
  // without perturbing residency.
  PageRef Peek(uint64_t offset) const;

  // Return a zeroed page at offset without reading the device (for freshly allocated pages).
  Result<PageRef> GetZeroed(uint64_t offset);

  // Write back every dirty page (one sorted, coalesced WriteBatch) and Sync the device.
  // Caller must exclude page-content mutators for the duration (the OSD holds volume_mu_
  // exclusive; FileSystem-layer tree writers are excluded via the mutation hold below).
  Status Flush();

  // Copy (offset, image) of every dirty page, without writing anything back. The OSD
  // journals these images ahead of a checkpoint so the checkpoint's in-place writes are
  // redo-able after a crash. Same exclusion requirements as Flush; the images are copied
  // outside the stripe locks.
  void CollectDirty(std::vector<std::pair<uint64_t, std::string>>* out) const;

  // Number of dirty pages currently cached. O(1): journal-space accounting calls this
  // on every journaled op.
  size_t dirty_pages() const {
    int64_t n = dirty_count_.load(std::memory_order_relaxed);
    return n > 0 ? static_cast<size_t>(n) : 0;
  }

  // Drop a page from the cache (after its extent is freed). Discards dirty data.
  void Invalidate(uint64_t offset);

  // Uncached device IO for overflow extents (large btree values). Callers guarantee these
  // ranges are never simultaneously cached as pages (freed pages are Invalidate()d).
  Status ReadRaw(uint64_t offset, size_t size, std::string* out) const;
  Status WriteRaw(uint64_t offset, Slice data);

  // Multi-page mutation vs. snapshot coordination. Structure mutators (btree writers)
  // hold this shared for the duration of a mutation that spans page boundaries; Flush /
  // CollectDirty / DropCacheForTesting hold it exclusive internally, so a checkpoint
  // only ever snapshots complete mutations. Page *content* writes under an OSD object
  // lock are already excluded from checkpoints by volume_mu_; this hold covers the
  // FileSystem-layer index/reverse trees that mutate pages outside the volume lock.
  // Lock order: tree lock -> this -> stripe locks (see docs/CONCURRENCY.md).
  [[nodiscard]] std::shared_lock<std::shared_mutex> SharedMutationHold() const {
    return std::shared_lock<std::shared_mutex>(flush_mu_);
  }

  // Drop the whole cache (testing: force re-reads from the device).
  Status DropCacheForTesting();

  size_t cached_pages() const;

  size_t stripe_count() const { return stripe_count_; }

  // Per-stripe lock instrumentation (same shape as ShardedMutex::ShardStat): every
  // stripe acquisition is counted locally, and contended ones additionally feed the
  // process-global kLockContentions counter — the pager's stripe locks used to be
  // the one striped structure invisible to contention accounting. Acquisitions stay
  // local so kLockAcquisitions keeps its §2.3 meaning (namespace-structure locks).
  struct StripeLockStat {
    size_t stripe = 0;
    uint64_t acquisitions = 0;
    uint64_t contentions = 0;
  };
  // The n most contended stripes, descending (zero-contention stripes omitted).
  std::vector<StripeLockStat> TopContendedStripes(size_t n) const;
  uint64_t stripe_lock_acquisitions() const;
  uint64_t stripe_lock_contentions() const;

 private:
  // One independently locked cache stripe: hash map of resident pages plus the
  // second-chance FIFO ring the evictor sweeps. Ring entries are lazily deleted
  // (Invalidate leaves a stale offset behind; the sweep skips it).
  struct Stripe {
    mutable std::shared_mutex mu;
    mutable std::atomic<uint64_t> acquisitions{0};
    mutable std::atomic<uint64_t> contentions{0};
    std::unordered_map<uint64_t, PageRef> map;
    std::deque<uint64_t> ring;
  };

  // Counted stripe acquisition (try-lock-first probe, like sharded_lock.h).
  std::shared_lock<std::shared_mutex> LockStripeShared(const Stripe& s) const;
  std::unique_lock<std::shared_mutex> LockStripeExclusive(const Stripe& s) const;

  // One dirty victim picked for batched write-back: its image and epoch were snapshotted
  // under the stripe lock; the page itself stays resident until the write succeeds and
  // the epoch still matches. Holding the PageRef pins the page (use_count > 1), so a
  // concurrent sweep in the same stripe can never snapshot the same victim twice, and
  // the post-IO pass can verify identity (not just offset) before clearing the dirty bit.
  struct Writeback {
    PageRef page;
    uint64_t epoch;
    std::string image;
  };

  Stripe& StripeFor(uint64_t offset) const {
    return stripes_[(offset / kPageSize) % stripe_count_];
  }

  // Evict from `s` until it is under its per-stripe budget (or nothing is evictable:
  // capacity is a target, not a hard bound — pinned and no-steal-dirty pages stay).
  // Clean victims are evicted in place; dirty victims (non-no-steal) are snapshotted
  // into *writeback and stay resident — the caller issues the batch IO after releasing
  // s.mu and then calls FinishWriteback. Caller holds s.mu exclusively.
  void EvictLocked(Stripe& s, std::vector<Writeback>* writeback);

  // Issue one sorted WriteBatch for `writeback` (no locks held), then, under s.mu, clear
  // the dirty bit of every page whose epoch is unchanged and evict it if the stripe is
  // still over budget. No-op on an empty list. With an engine set the batch is submitted
  // asynchronously and the post-IO pass runs in WritebackDone on a completion thread.
  Status FlushWriteback(Stripe& s, std::vector<Writeback>* writeback);

  // One in-flight async eviction batch: pins (and snapshots) live here until the
  // completion lands, satisfying the engine's buffer-lifetime rule. `attempts`
  // counts submissions for the completion-thread retry (no sleeping there).
  struct WritebackBatch {
    std::vector<Writeback> items;
    int attempts = 1;
  };

  // Async epilogue of FlushWriteback, run on an engine completion thread: on success,
  // the exact same epoch/identity validation + ClearDirty as the synchronous path
  // (stripe lock only — a leaf, so this never deadlocks a Flush); then drop the pins
  // and retire the batch from pending_writebacks_.
  void WritebackDone(Stripe& s, std::shared_ptr<WritebackBatch> st, Status status);

  // Block until no async write-back is in flight. Called under an exclusive
  // flush_mu_: submission increments pending_writebacks_ while holding flush_mu_
  // shared, so after this returns no batch can race the caller's snapshot.
  void AwaitPendingWritebacks() const;

  BlockDevice* const device_;
  PageChecksums* checksums_ = nullptr;  // Optional; see SetChecksums.
  VolumeHealth* health_ = nullptr;      // Optional; see SetVolumeHealth.
  RetryPolicy retry_ = RetryPolicy::None();
  const size_t capacity_;
  const bool no_steal_;
  const size_t stripe_count_;
  const size_t stripe_capacity_;
  const std::unique_ptr<Stripe[]> stripes_;
  mutable std::atomic<int64_t> dirty_count_{0};
  // See SharedMutationHold().
  mutable std::shared_mutex flush_mu_;

  // ---- Async write-back (engine_ != nullptr) ----
  io::IoEngine* engine_ = nullptr;
  mutable std::mutex wb_mu_;  // Guards the two fields below; leaf under flush_mu_.
  mutable std::condition_variable wb_cv_;
  mutable size_t pending_writebacks_ = 0;
  Status writeback_error_;  // See writeback_error().
};

}  // namespace hfad

#endif  // HFAD_SRC_STORAGE_PAGER_H_
