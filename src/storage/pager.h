// Pager: a fixed-size page cache between the btrees and the block device.
//
// Pages are 4 KiB, identified by their byte offset on the device (always page-aligned —
// the buddy allocator's minimum block is one page). The pager keeps an LRU cache of shared
// page buffers with dirty tracking and write-back, and counts hits/misses/write-backs in
// hfad::stats so benchmarks can report IO amplification.
//
// Concurrency: the cache map is internally synchronized. Page *content* synchronization is
// the responsibility of the owning structure (each btree holds its own lock), matching the
// paper's argument that locking should live in the index, not a shared namespace.
#ifndef HFAD_SRC_STORAGE_PAGER_H_
#define HFAD_SRC_STORAGE_PAGER_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/storage/block_device.h"

namespace hfad {

constexpr size_t kPageSize = 4096;

// A cached page buffer. Access content through data(); call MarkDirty() after mutating.
class Page {
 public:
  explicit Page(uint64_t offset) : offset_(offset) { buf_.resize(kPageSize); }

  uint64_t offset() const { return offset_; }
  uint8_t* data() { return reinterpret_cast<uint8_t*>(buf_.data()); }
  const uint8_t* data() const { return reinterpret_cast<const uint8_t*>(buf_.data()); }
  char* cdata() { return buf_.data(); }
  const char* cdata() const { return buf_.data(); }

  void MarkDirty() { dirty_.store(true, std::memory_order_release); }
  bool dirty() const { return dirty_.load(std::memory_order_acquire); }
  void ClearDirty() { dirty_.store(false, std::memory_order_release); }

 private:
  const uint64_t offset_;
  std::string buf_;
  std::atomic<bool> dirty_{false};
};

using PageRef = std::shared_ptr<Page>;

class Pager {
 public:
  // capacity_pages bounds the cache; evicted dirty pages are written back first.
  //
  // With no_steal = true the pager never writes a dirty page back on eviction: dirty pages
  // stay cached (the cache may exceed capacity) until an explicit Flush(). This is the
  // no-steal buffer policy the journaled OSD depends on — between checkpoints the on-disk
  // state is exactly the last checkpoint, so crash recovery can replay the journal onto it.
  Pager(BlockDevice* device, size_t capacity_pages, bool no_steal = false);

  // Fetch the page at the given byte offset (must be page-aligned), reading on miss.
  Result<PageRef> Get(uint64_t offset);

  // Return a zeroed page at offset without reading the device (for freshly allocated pages).
  Result<PageRef> GetZeroed(uint64_t offset);

  // Write back every dirty page and Sync the device.
  Status Flush();

  // Copy (offset, image) of every dirty page, without writing anything back. The OSD
  // journals these images ahead of a checkpoint so the checkpoint's in-place writes are
  // redo-able after a crash.
  void CollectDirty(std::vector<std::pair<uint64_t, std::string>>* out) const;

  // Number of dirty pages currently cached.
  size_t dirty_pages() const;

  // Drop a page from the cache (after its extent is freed). Discards dirty data.
  void Invalidate(uint64_t offset);

  // Uncached device IO for overflow extents (large btree values). Callers guarantee these
  // ranges are never simultaneously cached as pages (freed pages are Invalidate()d).
  Status ReadRaw(uint64_t offset, size_t size, std::string* out) const;
  Status WriteRaw(uint64_t offset, Slice data);

  // Drop the whole cache (testing: force re-reads from the device).
  Status DropCacheForTesting();

  size_t cached_pages() const;

 private:
  Status EvictIfNeededLocked();

  BlockDevice* const device_;
  const size_t capacity_;
  const bool no_steal_;

  mutable std::mutex mu_;
  // LRU: most recently used at front.
  std::list<uint64_t> lru_;
  struct Entry {
    PageRef page;
    std::list<uint64_t>::iterator lru_it;
  };
  std::unordered_map<uint64_t, Entry> cache_;
};

}  // namespace hfad

#endif  // HFAD_SRC_STORAGE_PAGER_H_
