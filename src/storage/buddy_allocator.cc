#include "src/storage/buddy_allocator.h"

#include <cassert>

#include "src/common/coding.h"
#include "src/common/stats.h"

namespace hfad {

namespace {

[[maybe_unused]] bool IsPowerOfTwo(uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

int Log2Floor(uint64_t v) {
  int r = 0;
  while (v > 1) {
    v >>= 1;
    r++;
  }
  return r;
}

}  // namespace

BuddyAllocator::BuddyAllocator(uint64_t region_start, uint64_t region_size)
    : region_start_(region_start),
      region_size_(region_size),
      max_order_(Log2Floor(region_size / kMinBlockSize)) {
  assert(region_size >= kMinBlockSize);
  assert(IsPowerOfTwo(region_size));
  assert(region_start % kMinBlockSize == 0);
  assert(region_start > 0 && "offset 0 is reserved for the superblock / empty-root sentinel");
  free_lists_.resize(max_order_ + 1);
  free_lists_[max_order_].insert(region_start_);
}

int BuddyAllocator::OrderForSize(uint64_t size) const {
  uint64_t blocks = (size + kMinBlockSize - 1) / kMinBlockSize;
  int order = 0;
  while ((uint64_t{1} << order) < blocks) {
    order++;
  }
  return order;
}

uint64_t BuddyAllocator::BuddyOf(uint64_t offset, int order) const {
  uint64_t rel = offset - region_start_;
  return region_start_ + (rel ^ SizeForOrder(order));
}

Result<BuddyAllocator::Extent> BuddyAllocator::Allocate(uint64_t size) {
  if (size == 0) {
    return Status::InvalidArgument("cannot allocate 0 bytes");
  }
  int want = OrderForSize(size);
  if (want > max_order_) {
    return Status::NoSpace("allocation of " + std::to_string(size) +
                           " bytes exceeds region size " + std::to_string(region_size_));
  }
  std::lock_guard<std::mutex> lock(mu_);
  // Find the smallest order >= want with a free block.
  int order = want;
  while (order <= max_order_ && free_lists_[order].empty()) {
    order++;
  }
  if (order > max_order_) {
    return Status::NoSpace("buddy region exhausted (" + std::to_string(allocated_bytes_) +
                           " of " + std::to_string(region_size_) + " bytes allocated)");
  }
  uint64_t offset = *free_lists_[order].begin();
  free_lists_[order].erase(free_lists_[order].begin());
  // Split down to the wanted order, returning the high halves to the free lists.
  while (order > want) {
    order--;
    free_lists_[order].insert(offset + SizeForOrder(order));
  }
  allocations_[offset] = want;
  allocated_bytes_ += SizeForOrder(want);
  stats::Add(stats::Counter::kExtentsAllocated);
  return Extent{offset, SizeForOrder(want)};
}

Status BuddyAllocator::Free(uint64_t offset) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = allocations_.find(offset);
  if (it == allocations_.end()) {
    return Status::InvalidArgument("free of unallocated offset " + std::to_string(offset));
  }
  int order = it->second;
  allocations_.erase(it);
  allocated_bytes_ -= SizeForOrder(order);
  stats::Add(stats::Counter::kExtentsFreed);
  // Coalesce with the buddy as long as it is free at the same order.
  while (order < max_order_) {
    uint64_t buddy = BuddyOf(offset, order);
    auto fit = free_lists_[order].find(buddy);
    if (fit == free_lists_[order].end()) {
      break;
    }
    free_lists_[order].erase(fit);
    offset = offset < buddy ? offset : buddy;
    order++;
  }
  free_lists_[order].insert(offset);
  return Status::Ok();
}

uint64_t BuddyAllocator::allocated_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return allocated_bytes_;
}

uint64_t BuddyAllocator::free_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return region_size_ - allocated_bytes_;
}

size_t BuddyAllocator::allocation_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return allocations_.size();
}

uint64_t BuddyAllocator::largest_free_block() const {
  std::lock_guard<std::mutex> lock(mu_);
  for (int order = max_order_; order >= 0; order--) {
    if (!free_lists_[order].empty()) {
      return SizeForOrder(order);
    }
  }
  return 0;
}

double BuddyAllocator::ExternalFragmentation() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t free = region_size_ - allocated_bytes_;
  if (free == 0) {
    return 0.0;
  }
  uint64_t largest = 0;
  for (int order = max_order_; order >= 0; order--) {
    if (!free_lists_[order].empty()) {
      largest = SizeForOrder(order);
      break;
    }
  }
  return 1.0 - static_cast<double>(largest) / static_cast<double>(free);
}

std::vector<BuddyAllocator::Extent> BuddyAllocator::LiveExtents() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Extent> out;
  out.reserve(allocations_.size());
  for (const auto& [offset, order] : allocations_) {
    out.push_back(Extent{offset, SizeForOrder(order)});
  }
  return out;
}

std::string BuddyAllocator::Serialize() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  PutVarint64(&out, allocations_.size());
  for (const auto& [offset, order] : allocations_) {
    PutVarint64(&out, offset);
    PutVarint32(&out, static_cast<uint32_t>(order));
  }
  return out;
}

Status BuddyAllocator::Deserialize(const std::string& blob) {
  std::lock_guard<std::mutex> lock(mu_);
  Slice in(blob);
  uint64_t count;
  if (!GetVarint64(&in, &count)) {
    return Status::Corruption("allocator snapshot: bad count");
  }
  std::map<uint64_t, int> allocs;
  uint64_t total = 0;
  for (uint64_t i = 0; i < count; i++) {
    uint64_t offset;
    uint32_t order;
    if (!GetVarint64(&in, &offset) || !GetVarint32(&in, &order)) {
      return Status::Corruption("allocator snapshot: truncated entry");
    }
    if (static_cast<int>(order) > max_order_ || offset < region_start_ ||
        offset + SizeForOrder(static_cast<int>(order)) > region_start_ + region_size_) {
      return Status::Corruption("allocator snapshot: entry out of region");
    }
    allocs[offset] = static_cast<int>(order);
    total += SizeForOrder(static_cast<int>(order));
  }
  allocations_ = std::move(allocs);
  allocated_bytes_ = total;
  RebuildFreeLists();
  return Status::Ok();
}

void BuddyAllocator::RebuildFreeLists() {
  // Start from one maximal free block, then carve out each live allocation by splitting.
  for (auto& fl : free_lists_) {
    fl.clear();
  }
  free_lists_[max_order_].insert(region_start_);
  for (const auto& [offset, order] : allocations_) {
    // Find the free block containing offset (there must be exactly one; allocations are
    // disjoint and the free lists currently cover everything not yet carved).
    for (int o = max_order_; o >= order; o--) {
      uint64_t block = region_start_ +
                       ((offset - region_start_) / SizeForOrder(o)) * SizeForOrder(o);
      auto it = free_lists_[o].find(block);
      if (it == free_lists_[o].end()) {
        continue;
      }
      // Split this block down to the allocation's order, keeping the halves not on the path.
      free_lists_[o].erase(it);
      for (int cur = o; cur > order; cur--) {
        uint64_t half = SizeForOrder(cur - 1);
        uint64_t lo = block;
        uint64_t hi = block + half;
        if (offset >= hi) {
          free_lists_[cur - 1].insert(lo);
          block = hi;
        } else {
          free_lists_[cur - 1].insert(hi);
          block = lo;
        }
      }
      break;
    }
  }
}

}  // namespace hfad
