// POSIX migration: backwards compatibility as §2.3 demands — "a storage system is not
// useful without some support for backwards compatibility in interface if not in disk
// layout."
//
// A legacy application works through paths and file descriptors, never knowing the
// namespace underneath is tag-based; meanwhile new code reaches the same objects by tag
// and by content. Hard links, the classic POSIX wart, fall out trivially: a link is
// just one more name.
//
//   $ ./examples/posix_migration
#include <cstdio>
#include <memory>
#include <string>

#include "src/core/filesystem.h"
#include "src/posix/posix_fs.h"
#include "src/storage/block_device.h"

using hfad::MemoryBlockDevice;
using hfad::core::FileSystem;
using hfad::core::FileSystemOptions;
using hfad::posix::kAppend;
using hfad::posix::kCreate;
using hfad::posix::kRead;
using hfad::posix::kTruncate;
using hfad::posix::kWrite;
using hfad::posix::PosixFs;

namespace {

void Check(const hfad::Status& s, const char* what) {
  if (!s.ok()) {
    fprintf(stderr, "%s: %s\n", what, s.ToString().c_str());
    exit(1);
  }
}

}  // namespace

int main() {
  auto device = std::make_shared<MemoryBlockDevice>(64ull << 20);
  FileSystemOptions options;
  options.lazy_indexing_threads = 0;
  auto fs_or = FileSystem::Create(device, options);
  Check(fs_or.status(), "create volume");
  auto& fs = *fs_or;
  auto pfs_or = PosixFs::Mount(fs.get());
  Check(pfs_or.status(), "mount posix layer");
  auto& pfs = *pfs_or;

  // --- The legacy application: plain POSIX calls. ---
  Check(pfs->Mkdir("/home"), "mkdir /home");
  Check(pfs->Mkdir("/home/margo"), "mkdir /home/margo");
  Check(pfs->Mkdir("/home/margo/papers"), "mkdir papers");

  auto fd = pfs->Open("/home/margo/papers/hfad.tex", kWrite | kCreate);
  Check(fd.status(), "open for write");
  Check(pfs->Pwrite(*fd, 0, "\\title{Hierarchical File Systems are Dead}\n").status(),
        "write");
  Check(pfs->Close(*fd), "close");

  fd = pfs->Open("/home/margo/papers/hfad.tex", kWrite | kAppend);
  Check(fd.status(), "open for append");
  Check(pfs->Pwrite(*fd, 0, "\\begin{abstract}...\\end{abstract}\n").status(), "append");
  Check(pfs->Close(*fd), "close");

  auto entries = pfs->Readdir("/home/margo/papers");
  Check(entries.status(), "readdir");
  printf("ls /home/margo/papers -> %zu entries\n", entries->size());

  auto st = pfs->Stat("/home/margo/papers/hfad.tex");
  Check(st.status(), "stat");
  printf("stat: %llu bytes, nlink %llu\n", (unsigned long long)st->meta.size,
         (unsigned long long)st->nlink);

  // Hard links: the same object under two paths, both first-class.
  Check(pfs->Link("/home/margo/papers/hfad.tex", "/home/margo/current-draft"),
        "hard link");
  auto st2 = pfs->Stat("/home/margo/current-draft");
  Check(st2.status(), "stat link");
  printf("after link: nlink %llu\n", (unsigned long long)st2->nlink);

  // --- The migration step: enrich the SAME object with tags and content search. ---
  auto oid = pfs->Resolve("/home/margo/papers/hfad.tex");
  Check(oid.status(), "resolve");
  Check(fs->AddTag(*oid, {"UDEF", "status:submitted"}), "tag");
  Check(fs->AddTag(*oid, {"UDEF", "venue:hotos09"}), "tag");
  Check(fs->IndexContent(*oid), "index");

  // New code never touches a path again:
  auto by_tag = fs->Lookup({{"UDEF", "venue:hotos09"}});
  Check(by_tag.status(), "lookup by tag");
  auto by_text = fs->Lookup({{"FULLTEXT", "abstract"}});
  Check(by_text.status(), "lookup by content");
  auto by_path = fs->Lookup({{"POSIX", "/home/margo/papers/hfad.tex"}});
  Check(by_path.status(), "lookup by path");
  printf("same object by tag/content/path: %s\n",
         (*by_tag == *by_text && *by_text == *by_path) ? "yes" : "NO");

  // Every name the object carries (both paths included — a path is just a name).
  auto tags = fs->Tags(*oid);
  Check(tags.status(), "tags");
  printf("the object's names:\n");
  for (const auto& tv : *tags) {
    printf("  %-8s %s\n", tv.tag.c_str(), tv.value.c_str());
  }

  // --- hFAD extensions through the POSIX layer: edit the middle of the file. ---
  fd = pfs->Open("/home/margo/current-draft", kRead | kWrite);
  Check(fd.status(), "open");
  Check(pfs->InsertAt(*fd, 0, "% reviewed by nick\n"), "insert at front");
  std::string head;
  Check(pfs->Pread(*fd, 0, 19, &head).status(), "read");
  Check(pfs->Close(*fd), "close");
  printf("first line is now: %s", head.c_str());

  // Rename, then verify both the namespace and the object survive.
  Check(pfs->Rename("/home/margo/papers", "/home/margo/published"), "rename dir");
  auto moved = pfs->Stat("/home/margo/published/hfad.tex");
  Check(moved.status(), "stat moved");
  printf("rename kept bytes: %llu\n", (unsigned long long)moved->meta.size);

  Check(fs->Checkpoint(), "checkpoint");
  printf("OK\n");
  return 0;
}
