// Email store: "ask non-technical friends where their email is physically located" (§2.1).
//
// Here email has no location at all: messages are objects tagged by the application
// (Table 1's APP/USER rows), with bodies in the full-text index. Folders, labels, and
// threads are all just tags; search is the only access path and never feels missing.
//
//   $ ./examples/email_search
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/core/filesystem.h"
#include "src/storage/block_device.h"

using hfad::MemoryBlockDevice;
using hfad::core::FileSystem;
using hfad::core::FileSystemOptions;
using hfad::core::ObjectId;

namespace {

void Check(const hfad::Status& s, const char* what) {
  if (!s.ok()) {
    fprintf(stderr, "%s: %s\n", what, s.ToString().c_str());
    exit(1);
  }
}

struct Message {
  const char* from;
  const char* label;
  const char* subject;
  const char* body;
};

const Message kMailbox[] = {
    {"pc-chair", "inbox", "HotOS 2009 decision",
     "We are delighted to inform you that your position paper has been accepted"},
    {"pc-chair", "inbox", "Camera ready deadline",
     "The camera ready deadline for accepted papers is April 10 2009"},
    {"nick", "inbox", "draft comments",
     "I read the hFAD draft and the namespace section needs a figure"},
    {"nick", "archive", "benchmark results",
     "The btree insert benchmark finished, numbers attached, looks sublinear"},
    {"gradstudent", "inbox", "prototype crash",
     "The fuse prototype crashed during recovery, journal replay stack attached"},
    {"vendor", "spam", "Cheap disks",
     "Buy three hundred gigabyte disks for the price of one"},
    {"margo", "sent", "Re: draft comments",
     "Good catch, I added the architecture figure and tightened section three"},
    {"sysadmin", "inbox", "Quota warning",
     "Your home directory has exceeded its quota, please delete large files"},
};

}  // namespace

int main() {
  auto device = std::make_shared<MemoryBlockDevice>(64ull << 20);
  FileSystemOptions options;
  options.lazy_indexing_threads = 0;
  auto fs_or = FileSystem::Create(device, options);
  Check(fs_or.status(), "create volume");
  auto& fs = *fs_or;

  // The mail client is just another application tagging its objects (Table 1: APP +
  // USER), plus its own annotations under UDEF.
  printf("delivering %zu messages...\n", std::size(kMailbox));
  for (const Message& m : kMailbox) {
    auto msg = fs->Create({{"APP", "mailer"},
                           {"USER", "margo"},
                           {"UDEF", std::string("from:") + m.from},
                           {"UDEF", std::string("label:") + m.label}});
    Check(msg.status(), "create message");
    std::string rfc822 = std::string("Subject: ") + m.subject + "\n\n" + m.body;
    Check(fs->Write(*msg, 0, rfc822), "write message");
    Check(fs->IndexContent(*msg), "index message");
  }

  // "Where is your email?" — wrong question. "Which mail mentions the deadline?":
  auto deadline = fs->SearchText({"deadline"});
  Check(deadline.status(), "search");
  printf("messages mentioning 'deadline':        %zu\n", deadline->size());
  for (const auto& hit : *deadline) {
    std::string subject;
    Check(fs->Read(hit.docid, 0, 120, &subject), "read");
    subject = subject.substr(0, subject.find('\n'));
    printf("  oid %-3llu score %.3f  %s\n", (unsigned long long)hit.docid, hit.score,
           subject.c_str());
  }

  // Labels are tags; a folder listing is a lookup.
  auto inbox = fs->Lookup({{"APP", "mailer"}, {"UDEF", "label:inbox"}});
  Check(inbox.status(), "lookup inbox");
  printf("inbox:                                 %zu\n", inbox->size());

  // Boolean mail filters compose naturally.
  auto filtered = fs->Query(
      "APP:mailer AND UDEF:from:nick AND NOT UDEF:label:archive");
  Check(filtered.status(), "filter");
  printf("from nick, not archived:               %zu\n", filtered->size());

  // Conjunction of content terms (§3.1.1's FULLTEXT/S1, FULLTEXT/S2 example).
  auto both = fs->Lookup({{"FULLTEXT", "journal"}, {"FULLTEXT", "recovery"}});
  Check(both.status(), "content conjunction");
  printf("mentions journal AND recovery:         %zu\n", both->size());

  // Refile = retag; no data moves. Move nick's benchmark mail to inbox.
  auto archived = fs->Lookup({{"UDEF", "label:archive"}});
  Check(archived.status(), "lookup");
  for (ObjectId oid : *archived) {
    Check(fs->RemoveTag(oid, {"UDEF", "label:archive"}), "untag");
    Check(fs->AddTag(oid, {"UDEF", "label:inbox"}), "retag");
  }
  auto inbox2 = fs->Lookup({{"APP", "mailer"}, {"UDEF", "label:inbox"}});
  Check(inbox2.status(), "lookup inbox");
  printf("inbox after refiling:                  %zu\n", inbox2->size());

  // Spam purge: find, then remove objects entirely (names, postings, bytes).
  auto spam = fs->Lookup({{"UDEF", "label:spam"}});
  Check(spam.status(), "lookup spam");
  for (ObjectId oid : *spam) {
    Check(fs->Remove(oid), "purge");
  }
  auto disks = fs->SearchText({"disks"});
  Check(disks.status(), "search");
  printf("mentions of 'disks' after spam purge:  %zu\n", disks->size());

  Check(fs->Checkpoint(), "checkpoint");
  printf("OK\n");
  return 0;
}
