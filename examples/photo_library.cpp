// Photo library: the paper's §1 motivating workload.
//
// "One might want to access a picture, for instance, based on who is in it, when it was
// taken, where it was taken, etc." — this example builds a synthetic multi-gigapixel-era
// photo library and answers exactly those questions, without a directory in sight.
//
//   $ ./examples/photo_library
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/common/random.h"
#include "src/core/filesystem.h"
#include "src/storage/block_device.h"

using hfad::MemoryBlockDevice;
using hfad::Random;
using hfad::core::FileSystem;
using hfad::core::FileSystemOptions;
using hfad::core::ObjectId;

namespace {

void Check(const hfad::Status& s, const char* what) {
  if (!s.ok()) {
    fprintf(stderr, "%s: %s\n", what, s.ToString().c_str());
    exit(1);
  }
}

const char* kPeople[] = {"margo", "nick", "grandma", "ada", "dennis"};
const char* kPlaces[] = {"hawaii", "boston", "berkeley", "kyoto"};
const char* kYears[] = {"2007", "2008", "2009"};

}  // namespace

int main() {
  auto device = std::make_shared<MemoryBlockDevice>(256ull << 20);
  FileSystemOptions options;
  options.lazy_indexing_threads = 2;  // Captions are indexed in the background (§3.4).
  auto fs_or = FileSystem::Create(device, options);
  Check(fs_or.status(), "create volume");
  auto& fs = *fs_or;

  // Ingest 500 "photos": a JPEG-ish payload plus tags for who/where/when and a caption
  // that goes to the full-text index.
  Random rng(2009);
  printf("ingesting 500 photos...\n");
  for (int i = 0; i < 500; i++) {
    const char* place = kPlaces[rng.Uniform(4)];
    const char* year = kYears[rng.Uniform(3)];
    auto photo = fs->Create({{"APP", "camera-import"},
                             {"UDEF", std::string("place:") + place},
                             {"UDEF", std::string("year:") + year}});
    Check(photo.status(), "create photo");
    // Each photo has 1-3 people in it — multiple names for one object (§2.2).
    int npeople = 1 + static_cast<int>(rng.Uniform(3));
    std::string caption = "photo taken in " + std::string(place) + " " + year + " with";
    for (int p = 0; p < npeople; p++) {
      const char* person = kPeople[rng.Uniform(5)];
      Check(fs->AddTag(*photo, {"UDEF", std::string("person:") + person}), "tag person");
      caption += " " + std::string(person);
    }
    // Synthetic image payload + caption; the caption is what gets indexed.
    std::string payload = rng.NextString(2048) + "\n" + caption;
    Check(fs->Write(*photo, 0, payload), "write photo");
    Check(fs->IndexContent(*photo), "index caption");
  }
  Check(fs->WaitForIndexing(), "drain indexer");

  // Who: every photo with grandma in it.
  auto grandma = fs->Lookup({{"UDEF", "person:grandma"}});
  Check(grandma.status(), "lookup person");
  printf("photos with grandma:                 %4zu\n", grandma->size());

  // Who + where: grandma in hawaii.
  auto gh = fs->Lookup({{"UDEF", "person:grandma"}, {"UDEF", "place:hawaii"}});
  Check(gh.status(), "lookup person+place");
  printf("photos with grandma in hawaii:       %4zu\n", gh->size());

  // Who + where + when, as a boolean query with an exclusion.
  auto q = fs->Query(
      "UDEF:person:grandma AND UDEF:place:hawaii AND NOT UDEF:year:2007");
  Check(q.status(), "boolean query");
  printf("  ... excluding 2007:                %4zu\n", q->size());

  // Content search over captions (BM25-ranked).
  auto hits = fs->SearchText({"kyoto", "margo"}, 5);
  Check(hits.status(), "content search");
  printf("top caption hits for kyoto+margo:    %4zu\n", hits->size());

  // The "current directory" is an iterative search refinement (§4, open question #2):
  // cd person:ada; cd year:2009 — then ls.
  auto cursor = fs->OpenCursor();
  Check(cursor.Refine({"UDEF", "person:ada"}), "cd person:ada");
  Check(cursor.Refine({"UDEF", "year:2009"}), "cd year:2009");
  auto listing = cursor.Results();
  Check(listing.status(), "ls");
  printf("cursor person:ada/year:2009 lists:   %4zu\n", listing->size());
  Check(cursor.Up(), "cd ..");
  auto wider = cursor.Results();
  Check(wider.status(), "ls");
  printf("  ... after cd ..:                   %4zu\n", wider->size());

  // Collections are tags, so "albums" are free: put one photo in three albums.
  if (!gh->empty()) {
    ObjectId favorite = (*gh)[0];
    for (const char* album : {"album:best-of", "album:family", "album:wall-print"}) {
      Check(fs->AddTag(favorite, {"UDEF", album}), "album tag");
    }
    auto tags = fs->Tags(favorite);
    Check(tags.status(), "tags");
    printf("favorite photo now carries %zu names\n", tags->size());
  }

  Check(fs->Checkpoint(), "checkpoint");
  printf("OK\n");
  return 0;
}
