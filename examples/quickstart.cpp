// Quickstart: the native hFAD API in one sitting.
//
//   $ ./examples/quickstart
//
// Creates an hFAD volume in memory, stores a few objects under tagged names, finds them
// by tag / boolean query / content search, and exercises the byte-level access
// interfaces (insert into the middle, two-off_t truncate) that POSIX cannot express.
#include <cstdio>
#include <memory>

#include "src/core/filesystem.h"
#include "src/storage/block_device.h"

using hfad::MemoryBlockDevice;
using hfad::core::FileSystem;
using hfad::core::FileSystemOptions;
using hfad::core::ObjectId;

namespace {

void Check(const hfad::Status& s, const char* what) {
  if (!s.ok()) {
    fprintf(stderr, "%s: %s\n", what, s.ToString().c_str());
    exit(1);
  }
}

}  // namespace

int main() {
  // 1. Create a volume. Any BlockDevice works; FileBlockDevice persists across runs.
  auto device = std::make_shared<MemoryBlockDevice>(64ull << 20);
  FileSystemOptions options;
  options.lazy_indexing_threads = 0;  // Index synchronously for a deterministic demo.
  auto fs_or = FileSystem::Create(device, options);
  Check(fs_or.status(), "create volume");
  auto& fs = *fs_or;

  // 2. Objects are named by tag/value pairs — as many as you like, none canonical.
  auto note = fs->Create({{"USER", "margo"}, {"UDEF", "ideas"}, {"UDEF", "hotos"}});
  Check(note.status(), "create note");
  Check(fs->Write(*note, 0, "position papers should provoke discussion"), "write");
  Check(fs->IndexContent(*note), "index content");

  auto draft = fs->Create({{"USER", "margo"}, {"UDEF", "ideas"}, {"APP", "editor"}});
  Check(draft.status(), "create draft");
  Check(fs->Write(*draft, 0, "hierarchical namespaces considered harmful"), "write");
  Check(fs->IndexContent(*draft), "index content");

  // 3. Naming lookups are conjunctions; results need not be unique.
  auto ideas = fs->Lookup({{"UDEF", "ideas"}});
  Check(ideas.status(), "lookup");
  printf("objects tagged ideas: %zu\n", ideas->size());

  auto hotos_ideas = fs->Lookup({{"UDEF", "ideas"}, {"UDEF", "hotos"}});
  Check(hotos_ideas.status(), "lookup");
  printf("ideas AND hotos:      %zu (oid %llu)\n", hotos_ideas->size(),
         (unsigned long long)(*hotos_ideas)[0]);

  // 4. Boolean queries and ranked content search run over the same indexes.
  auto q = fs->Query("USER:margo AND NOT APP:editor");
  Check(q.status(), "query");
  printf("margo's non-editor objects: %zu\n", q->size());

  auto hits = fs->SearchText({"hierarchical", "namespaces"});
  Check(hits.status(), "search");
  printf("content search hit: oid %llu (score %.3f)\n",
         (unsigned long long)(*hits)[0].docid, (*hits)[0].score);

  // 5. Byte-level access: insert into the middle and remove a range — no
  //    read-shift-rewrite, the extent tree shifts in O(log n).
  Check(fs->Insert(*note, 9, "HotOS "), "insert");
  std::string text;
  Check(fs->Read(*note, 0, 1024, &text), "read");
  printf("after insert:  \"%s\"\n", text.c_str());

  Check(fs->Truncate(*note, 15, 22), "two-off_t truncate");  // Drop "papers should ..."
  Check(fs->Read(*note, 0, 1024, &text), "read");
  printf("after truncate: \"%s\"\n", text.c_str());

  // 6. Iterative search refinement: the "current directory" of a search namespace.
  auto cursor = fs->OpenCursor();
  Check(cursor.Refine({"USER", "margo"}), "refine");
  Check(cursor.Refine({"UDEF", "ideas"}), "refine");
  auto results = cursor.Results();
  Check(results.status(), "cursor results");
  printf("cursor at USER:margo/UDEF:ideas -> %zu objects\n", results->size());

  Check(fs->Checkpoint(), "checkpoint");
  printf("OK\n");
  return 0;
}
