// C5 (§3.4): "The lowest layer of the OSD is a buddy storage allocator."
//
// Measures allocation/free throughput, behaviour under mixed sizes, buddy coalescing,
// and external fragmentation after a churn workload.
#include <benchmark/benchmark.h>

#include <vector>

#include "src/common/random.h"
#include "src/storage/buddy_allocator.h"

namespace {

using hfad::BuddyAllocator;
using hfad::Random;

constexpr uint64_t kRegion = 1ull << 30;  // 1 GiB of address space (no backing IO).
constexpr uint64_t kBase = 4096;

// Fixed-size alloc/free pairs: the pure fast path.
void BM_AllocFreeFixed(benchmark::State& state) {
  const uint64_t size = static_cast<uint64_t>(state.range(0));
  BuddyAllocator alloc(kBase, kRegion);
  for (auto _ : state) {
    auto e = alloc.Allocate(size);
    if (!e.ok()) {
      state.SkipWithError("allocation failed");
      break;
    }
    benchmark::DoNotOptimize(e->offset);
    (void)alloc.Free(e->offset);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AllocFreeFixed)->Arg(4096)->Arg(65536)->Arg(1 << 20);

// Mixed sizes with a standing population: the OSD's steady state.
void BM_AllocFreeMixed(benchmark::State& state) {
  BuddyAllocator alloc(kBase, kRegion);
  Random rng(42);
  std::vector<uint64_t> live;
  live.reserve(4096);
  for (auto _ : state) {
    if (live.size() < 2048 || rng.OneIn(2)) {
      auto e = alloc.Allocate(rng.Range(1, 256 * 1024));
      if (e.ok()) {
        live.push_back(e->offset);
      }
    } else {
      size_t idx = rng.Uniform(live.size());
      (void)alloc.Free(live[idx]);
      live[idx] = live.back();
      live.pop_back();
    }
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["live_allocs"] = static_cast<double>(live.size());
  state.counters["fragmentation"] = alloc.ExternalFragmentation();
}
BENCHMARK(BM_AllocFreeMixed);

// Coalescing: free a fully-carved region in random order; the end state must be one
// maximal block. Measures the cost of buddy merges.
void BM_CoalesceFullRegion(benchmark::State& state) {
  Random rng(7);
  for (auto _ : state) {
    state.PauseTiming();
    BuddyAllocator alloc(kBase, 64ull << 20);
    std::vector<uint64_t> offsets;
    while (true) {
      auto e = alloc.Allocate(4096);
      if (!e.ok()) {
        break;
      }
      offsets.push_back(e->offset);
    }
    // Shuffle so merges happen at every order.
    for (size_t i = offsets.size(); i > 1; i--) {
      std::swap(offsets[i - 1], offsets[rng.Uniform(i)]);
    }
    state.ResumeTiming();
    for (uint64_t off : offsets) {
      (void)alloc.Free(off);
    }
    if (alloc.largest_free_block() != 64ull << 20) {
      state.SkipWithError("region failed to coalesce");
    }
  }
  state.SetItemsProcessed(state.iterations() * ((64ull << 20) / 4096));
}
BENCHMARK(BM_CoalesceFullRegion)->Unit(benchmark::kMillisecond);

// Fragmentation under adversarial churn: many small long-lived allocations pinning
// large free spans.
void BM_FragmentationUnderChurn(benchmark::State& state) {
  for (auto _ : state) {
    BuddyAllocator alloc(kBase, 256ull << 20);
    Random rng(13);
    std::vector<uint64_t> pinned;
    std::vector<uint64_t> churn;
    for (int i = 0; i < 20000; i++) {
      auto e = alloc.Allocate(rng.Range(1, 64 * 1024));
      if (!e.ok()) {
        break;
      }
      if (rng.OneIn(10)) {
        pinned.push_back(e->offset);
      } else {
        churn.push_back(e->offset);
      }
    }
    for (uint64_t off : churn) {
      (void)alloc.Free(off);
    }
    state.counters["fragmentation"] = alloc.ExternalFragmentation();
    state.counters["largest_free_mb"] =
        static_cast<double>(alloc.largest_free_block()) / (1 << 20);
    for (uint64_t off : pinned) {
      (void)alloc.Free(off);
    }
  }
}
BENCHMARK(BM_FragmentationUnderChurn)->Unit(benchmark::kMillisecond);

// Snapshot/restore cost: what the OSD pays per checkpoint.
void BM_SerializeSnapshot(benchmark::State& state) {
  BuddyAllocator alloc(kBase, kRegion);
  Random rng(3);
  for (int i = 0; i < state.range(0); i++) {
    (void)alloc.Allocate(rng.Range(1, 64 * 1024));
  }
  for (auto _ : state) {
    std::string snap = alloc.Serialize();
    benchmark::DoNotOptimize(snap.data());
  }
  state.SetLabel(std::to_string(state.range(0)) + " live allocations");
}
BENCHMARK(BM_SerializeSnapshot)->Arg(1000)->Arg(10000)->Arg(100000);

}  // namespace

BENCHMARK_MAIN();
