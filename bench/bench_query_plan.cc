// A1 (ablation): the selectivity-ordered conjunction optimizer vs naive left-to-right
// evaluation, on skewed tag cardinalities. Open question #3 asked whether index stores
// should include "full-fledged query optimizers"; this quantifies how far the cheap
// cardinality-ordering heuristic gets.
#include <benchmark/benchmark.h>

#include <memory>
#include <string>

#include "src/core/filesystem.h"
#include "src/query/query.h"
#include "src/storage/block_device.h"

namespace {

using hfad::MemoryBlockDevice;
using hfad::core::FileSystem;
using hfad::core::FileSystemOptions;
using hfad::query::PlanStats;
using hfad::query::QueryEngine;

// Skewed volume: tag cardinalities span three orders of magnitude.
//   huge:  every object            (n)
//   big:   every 10th              (n/10)
//   mid:   every 100th             (n/100)
//   rare:  every 1000th            (n/1000)
struct SkewFixture {
  explicit SkewFixture(int n) {
    FileSystemOptions options;
    options.lazy_indexing_threads = 0;
    options.osd.journaling = false;
    fs = std::move(FileSystem::Create(std::make_shared<MemoryBlockDevice>(1ull << 30),
                                      options))
             .value();
    for (int i = 0; i < n; i++) {
      auto oid = fs->Create({{"UDEF", "huge"}});
      if (i % 10 == 0) {
        (void)fs->AddTag(*oid, {"UDEF", "big"});
      }
      if (i % 100 == 0) {
        (void)fs->AddTag(*oid, {"UDEF", "mid"});
      }
      if (i % 1000 == 0) {
        (void)fs->AddTag(*oid, {"UDEF", "rare"});
      }
    }
  }
  std::unique_ptr<FileSystem> fs;
};

SkewFixture* Fixture() {
  static SkewFixture f(20000);
  return &f;
}

void RunQuery(benchmark::State& state, const char* query, bool optimize) {
  SkewFixture* f = Fixture();
  QueryEngine engine(f->fs->indexes(), optimize);
  uint64_t rows = 0;
  uint64_t lookups = 0;
  uint64_t runs = 0;
  for (auto _ : state) {
    PlanStats stats;
    auto r = engine.Run(query, &stats);
    benchmark::DoNotOptimize(r.ok());
    rows += stats.rows_scanned;
    lookups += stats.index_lookups;
    runs++;
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["rows_scanned"] = static_cast<double>(rows) / runs;
  state.counters["index_lookups"] = static_cast<double>(lookups) / runs;
}

// Worst-case term order for the naive plan: biggest first.
void BM_TwoTerm_Optimized(benchmark::State& state) {
  RunQuery(state, "UDEF:huge AND UDEF:rare", true);
}
BENCHMARK(BM_TwoTerm_Optimized)->Unit(benchmark::kMicrosecond);

void BM_TwoTerm_Naive(benchmark::State& state) {
  RunQuery(state, "UDEF:huge AND UDEF:rare", false);
}
BENCHMARK(BM_TwoTerm_Naive)->Unit(benchmark::kMicrosecond);

void BM_FourTerm_Optimized(benchmark::State& state) {
  RunQuery(state, "UDEF:huge AND UDEF:big AND UDEF:mid AND UDEF:rare", true);
}
BENCHMARK(BM_FourTerm_Optimized)->Unit(benchmark::kMicrosecond);

void BM_FourTerm_Naive(benchmark::State& state) {
  RunQuery(state, "UDEF:huge AND UDEF:big AND UDEF:mid AND UDEF:rare", false);
}
BENCHMARK(BM_FourTerm_Naive)->Unit(benchmark::kMicrosecond);

// Empty-term early exit: the optimizer runs the 0-cardinality term first and skips
// every other lookup; the naive plan scans the huge term for nothing.
void BM_EmptyConjunct_Optimized(benchmark::State& state) {
  RunQuery(state, "UDEF:huge AND UDEF:big AND UDEF:absent", true);
}
BENCHMARK(BM_EmptyConjunct_Optimized)->Unit(benchmark::kMicrosecond);

void BM_EmptyConjunct_Naive(benchmark::State& state) {
  RunQuery(state, "UDEF:huge AND UDEF:big AND UDEF:absent", false);
}
BENCHMARK(BM_EmptyConjunct_Naive)->Unit(benchmark::kMicrosecond);

// Best-case order for the naive plan (already selective-first): the optimizer must not
// make it worse.
void BM_AlreadyOrdered_Optimized(benchmark::State& state) {
  RunQuery(state, "UDEF:rare AND UDEF:mid AND UDEF:huge", true);
}
BENCHMARK(BM_AlreadyOrdered_Optimized)->Unit(benchmark::kMicrosecond);

void BM_AlreadyOrdered_Naive(benchmark::State& state) {
  RunQuery(state, "UDEF:rare AND UDEF:mid AND UDEF:huge", false);
}
BENCHMARK(BM_AlreadyOrdered_Naive)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
