// Instrumentation overhead: the bench_query page-64 Find hot path and the journaled
// AddTag hot path re-run at fixed iteration counts under four observability modes —
// everything off, always-on histograms only (the shipped default), histograms plus
// 1-in-64 sampled tracing (the default sampling rate), and histograms plus tracing
// every operation. Baseline lives in BENCH_observability.json; the acceptance bar is
// always-on histogram cost < 5% on the Find path.
#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "src/common/metrics.h"
#include "src/common/trace.h"
#include "src/core/filesystem.h"
#include "src/query/query.h"
#include "src/storage/block_device.h"

namespace {

using hfad::MemoryBlockDevice;
using hfad::core::FileSystem;
using hfad::core::FileSystemOptions;
using hfad::core::TagValue;
using hfad::query::FindOptions;

// Mode axis: state.range(0).
enum Mode : int {
  kOff = 0,        // Histograms disabled, tracing off — the true baseline.
  kHistOnly = 1,   // Always-on histograms, tracing off — the shipped default cost.
  kTrace64 = 2,    // Histograms + 1-in-64 sampled tracing (default sample rate).
  kTraceAll = 3,   // Histograms + every operation traced.
};

const char* ModeName(int mode) {
  switch (mode) {
    case kOff: return "off";
    case kHistOnly: return "hist_only";
    case kTrace64: return "trace_1_in_64";
    default: return "trace_always";
  }
}

void ApplyMode(int mode) {
  hfad::metrics::SetEnabled(mode != kOff);
  hfad::trace::SetSampleEvery(mode == kTrace64 ? 64 : mode == kTraceAll ? 1 : 0);
}

void RestoreDefaults() {
  hfad::metrics::SetEnabled(true);
  hfad::trace::SetSampleEvery(64);
}

// Same skewed volume as bench_query (journaling off: pure index + pager cost).
FileSystem* QueryFixture() {
  static std::unique_ptr<FileSystem> fs = [] {
    FileSystemOptions options;
    options.lazy_indexing_threads = 0;
    options.osd.journaling = false;
    auto f = FileSystem::Create(std::make_shared<MemoryBlockDevice>(1ull << 30), options);
    for (int i = 0; i < 20000; i++) {
      auto oid = (*f)->Create({{"UDEF", "huge"}});
      if (i % 10 == 0) {
        (void)(*f)->AddTag(*oid, {"UDEF", "big"});
      }
    }
    return std::move(*f);
  }();
  return fs.get();
}

// The bench_query streaming hot path: one 64-id page per call.
void BM_FindPage64(benchmark::State& state) {
  FileSystem* fs = QueryFixture();
  ApplyMode(static_cast<int>(state.range(0)));
  FindOptions options;
  options.limit = 64;
  for (auto _ : state) {
    auto r = fs->Find("UDEF:huge", options);
    benchmark::DoNotOptimize(r.ok() ? r->ids.size() : 0);
  }
  RestoreDefaults();
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(ModeName(static_cast<int>(state.range(0))));
}
BENCHMARK(BM_FindPage64)
    ->Arg(kOff)->Arg(kHistOnly)->Arg(kTrace64)->Arg(kTraceAll)
    ->Iterations(20000)
    ->Unit(benchmark::kMicrosecond);

// The journal hot path: one journaled AddTag per iteration (group commit on, the
// default), cycling values so postings stay small.
void BM_JournalAddTag(benchmark::State& state) {
  FileSystemOptions options;
  options.lazy_indexing_threads = 0;
  auto fs = std::move(FileSystem::Create(std::make_shared<MemoryBlockDevice>(1ull << 30),
                                         options))
                .value();
  auto oid = fs->Create(std::vector<TagValue>{});
  ApplyMode(static_cast<int>(state.range(0)));
  int serial = 0;
  for (auto _ : state) {
    (void)fs->AddTag(*oid, {"UDEF", "v" + std::to_string(serial++)});
  }
  RestoreDefaults();
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(ModeName(static_cast<int>(state.range(0))));
}
BENCHMARK(BM_JournalAddTag)
    ->Arg(kOff)->Arg(kHistOnly)->Arg(kTrace64)->Arg(kTraceAll)
    ->Iterations(10000)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
