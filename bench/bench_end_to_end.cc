// F1 (Figure 1): the layered architecture working end to end — index stores and
// arbitrary-length extents over the OSD over stable storage, with the POSIX veneer on
// top. Mixed-workload throughput through every layer, plus the durability-mode sweep
// (journaling × group commit: §3.3's "the OSD may be transactional" as a dial).
#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "src/common/random.h"
#include "src/core/filesystem.h"
#include "src/posix/posix_fs.h"
#include "src/storage/block_device.h"

namespace {

using hfad::MemoryBlockDevice;
using hfad::Random;
using hfad::core::FileSystem;
using hfad::core::FileSystemOptions;
using hfad::core::ObjectId;

// A lifecycle op mix through the native API: create+tag, write, index, search by tag,
// content search, read, retag, delete. Roughly what a desktop search-centric workload
// does all day.
void BM_MixedNativeWorkload(benchmark::State& state) {
  FileSystemOptions options;
  options.lazy_indexing_threads = 0;
  options.osd.journaling = state.range(0) != 0;
  auto fs = std::move(FileSystem::Create(std::make_shared<MemoryBlockDevice>(1ull << 30),
                                         options))
                .value();
  Random rng(11);
  std::vector<ObjectId> live;
  uint64_t serial = 0;
  for (auto _ : state) {
    int action = static_cast<int>(rng.Uniform(10));
    if (action < 3 || live.size() < 8) {
      auto oid = fs->Create({{"USER", "user" + std::to_string(serial % 8)},
                             {"UDEF", "batch" + std::to_string(serial % 32)}});
      std::string body = "document " + std::to_string(serial) + " about subject" +
                         std::to_string(serial % 64);
      (void)fs->Write(*oid, 0, body);
      (void)fs->IndexContent(*oid);
      live.push_back(*oid);
      serial++;
    } else if (action < 5) {
      auto ids = fs->Lookup({{"UDEF", "batch" + std::to_string(rng.Uniform(32))}});
      benchmark::DoNotOptimize(ids.ok());
    } else if (action < 7) {
      auto hits = fs->SearchText({"subject" + std::to_string(rng.Uniform(64))}, 10);
      benchmark::DoNotOptimize(hits.ok());
    } else if (action < 9) {
      ObjectId oid = live[rng.Uniform(live.size())];
      std::string out;
      (void)fs->Read(oid, 0, 4096, &out);
      benchmark::DoNotOptimize(out.data());
    } else {
      size_t idx = rng.Uniform(live.size());
      (void)fs->Remove(live[idx]);
      live[idx] = live.back();
      live.pop_back();
    }
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(options.osd.journaling ? "journaled" : "no journal");
}
// Iteration counts are pinned: these workloads consume allocator space monotonically
// (only ~10% of ops delete), so letting the harness auto-scale iterations makes a fast
// build run the volume into NoSpace. Fixed counts stay below the 512 MiB buddy heap
// and keep items/s comparable across builds.
BENCHMARK(BM_MixedNativeWorkload)->Arg(0)->Arg(1)->Iterations(50000);

// The same spirit through the POSIX veneer: create/write/read/readdir/unlink under a
// directory tree. Everything below the veneer is tag lookups and range scans.
void BM_MixedPosixWorkload(benchmark::State& state) {
  FileSystemOptions options;
  options.lazy_indexing_threads = 0;
  options.osd.journaling = false;
  auto fs = std::move(FileSystem::Create(std::make_shared<MemoryBlockDevice>(1ull << 30),
                                         options))
                .value();
  auto pfs = std::move(hfad::posix::PosixFs::Mount(fs.get())).value();
  for (int d = 0; d < 8; d++) {
    (void)pfs->Mkdir("/dir" + std::to_string(d));
  }
  Random rng(13);
  uint64_t serial = 0;
  std::vector<std::string> files;
  for (auto _ : state) {
    int action = static_cast<int>(rng.Uniform(10));
    if (action < 4 || files.size() < 8) {
      std::string path = "/dir" + std::to_string(serial % 8) + "/f" +
                         std::to_string(serial);
      auto fd = pfs->Open(path, hfad::posix::kWrite | hfad::posix::kCreate);
      (void)pfs->Pwrite(*fd, 0, "file body " + std::to_string(serial));
      (void)pfs->Close(*fd);
      files.push_back(path);
      serial++;
    } else if (action < 7) {
      auto fd = pfs->Open(files[rng.Uniform(files.size())], hfad::posix::kRead);
      if (fd.ok()) {
        std::string out;
        (void)pfs->Pread(*fd, 0, 4096, &out);
        (void)pfs->Close(*fd);
      }
    } else if (action < 9) {
      auto entries = pfs->Readdir("/dir" + std::to_string(rng.Uniform(8)));
      benchmark::DoNotOptimize(entries.ok());
    } else {
      size_t idx = rng.Uniform(files.size());
      (void)pfs->Unlink(files[idx]);
      files[idx] = files.back();
      files.pop_back();
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MixedPosixWorkload)->Iterations(30000);

// Durability dial: cost of one tagged-create+write under each §3.3 mode.
void BM_DurabilityModes(benchmark::State& state) {
  FileSystemOptions options;
  options.lazy_indexing_threads = 0;
  options.osd.journaling = state.range(0) != 0;
  options.osd.group_commit = state.range(1) != 0;
  auto fs = std::move(FileSystem::Create(std::make_shared<MemoryBlockDevice>(1ull << 30),
                                         options))
                .value();
  uint64_t serial = 0;
  for (auto _ : state) {
    auto oid = fs->Create({{"UDEF", "d" + std::to_string(serial++)}});
    (void)fs->Write(*oid, 0, "payload payload payload");
  }
  state.SetItemsProcessed(state.iterations());
  if (!options.osd.journaling) {
    state.SetLabel("no journal (durability at checkpoint only)");
  } else if (options.osd.group_commit) {
    state.SetLabel("journal + group commit (durable at Sync)");
  } else {
    state.SetLabel("journal + sync per op (durable at return)");
  }
}
BENCHMARK(BM_DurabilityModes)->Args({0, 0})->Args({1, 1})->Args({1, 0})->Iterations(10000);

// Recovery time vs uncheckpointed work: how long Open takes after a crash with k
// journaled ops outstanding.
void BM_CrashRecovery(benchmark::State& state) {
  const int ops = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    auto base = std::make_shared<MemoryBlockDevice>(512ull << 20);
    auto faulty = std::make_shared<hfad::FaultyBlockDevice>(base);
    FileSystemOptions options;
    options.lazy_indexing_threads = 0;
    options.osd.group_commit = false;
    {
      auto fs = std::move(FileSystem::Create(faulty, options)).value();
      for (int i = 0; i < ops; i++) {
        auto oid = fs->Create({{"UDEF", "crash" + std::to_string(i)}});
        (void)fs->Write(*oid, 0, "payload " + std::to_string(i));
      }
      faulty->SetWriteBudget(0);  // Crash.
    }
    state.ResumeTiming();
    auto recovered = FileSystem::Open(base, options);
    benchmark::DoNotOptimize(recovered.ok());
  }
  state.SetLabel(std::to_string(ops) + " ops to replay");
}
BENCHMARK(BM_CrashRecovery)->Arg(100)->Arg(1000)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
