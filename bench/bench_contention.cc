// C2 (§2.3 ¶2): "the directories /home/nick and /home/margo are functionally unrelated
// most of the time, yet accessing them requires synchronizing read access through a
// shared ancestor directory."
//
// N threads each work on their own user's files. In hierfs every operation resolves
// /home/user<i>/..., read-locking "/" and "/home" on the way — the shared-ancestor
// bottleneck. In hFAD each thread's objects are named by USER:user<i> tags; no shared
// structure sits between unrelated users. Throughput vs thread count is the paper's
// claimed divergence; lock_contentions makes the cause visible.
#include <benchmark/benchmark.h>

#include <atomic>
#include <memory>
#include <string>

#include "src/common/stats.h"
#include "src/core/filesystem.h"
#include "src/hierfs/hierfs.h"
#include "src/storage/block_device.h"

namespace {

using hfad::MemoryBlockDevice;
using hfad::core::FileSystem;
using hfad::core::FileSystemOptions;
namespace stats = hfad::stats;

constexpr int kFilesPerUser = 64;

// Shared fixtures across benchmark threads (google-benchmark runs the function once
// per thread; thread 0 does setup).
std::unique_ptr<hfad::hierfs::HierFs> g_hier;
std::unique_ptr<FileSystem> g_hfad;

void BM_LookupThroughSharedAncestors_Hier(benchmark::State& state) {
  if (state.thread_index() == 0) {
    g_hier = std::move(hfad::hierfs::HierFs::Create(
                           std::make_shared<MemoryBlockDevice>(1ull << 30)))
                 .value();
    (void)g_hier->Mkdir("/home");
    for (int u = 0; u < state.threads(); u++) {
      std::string dir = "/home/user" + std::to_string(u);
      (void)g_hier->Mkdir(dir);
      for (int f = 0; f < kFilesPerUser; f++) {
        auto ino = g_hier->CreateFile(dir + "/f" + std::to_string(f));
        (void)g_hier->Write(*ino, 0, "x");
      }
    }
    stats::ResetAll();
  }
  const std::string dir = "/home/user" + std::to_string(state.thread_index());
  int i = 0;
  for (auto _ : state) {
    auto ino = g_hier->ResolvePath(dir + "/f" + std::to_string(i % kFilesPerUser));
    benchmark::DoNotOptimize(ino.ok());
    i++;
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    state.counters["lock_contentions"] =
        static_cast<double>(stats::Get(stats::Counter::kLockContentions));
  }
}
BENCHMARK(BM_LookupThroughSharedAncestors_Hier)
    ->ThreadRange(1, 16)
    ->UseRealTime()
    ->MeasureProcessCPUTime();

void BM_LookupByTag_Hfad(benchmark::State& state) {
  if (state.thread_index() == 0) {
    FileSystemOptions options;
    options.lazy_indexing_threads = 0;
    options.osd.journaling = false;  // Match hierfs (no journal) for a fair comparison.
    g_hfad = std::move(FileSystem::Create(std::make_shared<MemoryBlockDevice>(1ull << 30),
                                          options))
                 .value();
    for (int u = 0; u < state.threads(); u++) {
      std::string user = "user" + std::to_string(u);
      for (int f = 0; f < kFilesPerUser; f++) {
        auto oid = g_hfad->Create(
            {{"USER", user}, {"UDEF", "file" + std::to_string(f)}});
        (void)g_hfad->Write(*oid, 0, "x");
      }
    }
    stats::ResetAll();
  }
  const std::string user = "user" + std::to_string(state.thread_index());
  int i = 0;
  for (auto _ : state) {
    auto ids = g_hfad->Lookup(
        {{"USER", user}, {"UDEF", "file" + std::to_string(i % kFilesPerUser)}});
    benchmark::DoNotOptimize(ids.ok());
    i++;
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    state.counters["lock_contentions"] =
        static_cast<double>(stats::Get(stats::Counter::kLockContentions));
  }
}
BENCHMARK(BM_LookupByTag_Hfad)->ThreadRange(1, 16)->UseRealTime()->MeasureProcessCPUTime();

// Create storm: every thread creates files in its own directory / under its own tag.
// hierfs exclusive-locks the per-user directory AND walks the shared ancestors; hFAD
// appends to independent index entries.
void BM_CreateStorm_Hier(benchmark::State& state) {
  if (state.thread_index() == 0) {
    g_hier = std::move(hfad::hierfs::HierFs::Create(
                           std::make_shared<MemoryBlockDevice>(1ull << 30)))
                 .value();
    (void)g_hier->Mkdir("/home");
    for (int u = 0; u < state.threads(); u++) {
      (void)g_hier->Mkdir("/home/user" + std::to_string(u));
    }
  }
  const std::string dir = "/home/user" + std::to_string(state.thread_index());
  uint64_t i = 0;
  for (auto _ : state) {
    auto ino = g_hier->CreateFile(dir + "/new" + std::to_string(i++));
    benchmark::DoNotOptimize(ino.ok());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CreateStorm_Hier)->ThreadRange(1, 16)->UseRealTime()->MeasureProcessCPUTime();

void BM_CreateStorm_Hfad(benchmark::State& state) {
  if (state.thread_index() == 0) {
    FileSystemOptions options;
    options.lazy_indexing_threads = 0;
    options.osd.journaling = false;
    g_hfad = std::move(FileSystem::Create(std::make_shared<MemoryBlockDevice>(1ull << 30),
                                          options))
                 .value();
  }
  const std::string user = "user" + std::to_string(state.thread_index());
  uint64_t i = 0;
  for (auto _ : state) {
    auto oid = g_hfad->Create({{"USER", user}, {"UDEF", "new" + std::to_string(i++)}});
    benchmark::DoNotOptimize(oid.ok());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CreateStorm_Hfad)->ThreadRange(1, 16)->UseRealTime()->MeasureProcessCPUTime();

}  // namespace

BENCHMARK_MAIN();
