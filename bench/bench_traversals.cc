// C1 (§2.3 ¶1): "Consider the path between a search term and a data block in most
// systems today ... At a minimum, we encountered four index traversals; at a maximum,
// many more."
//
// This bench instruments that exact path on both architectures:
//
//   hierarchical stack (hierfs):
//     1. the search index — itself "built on top of files in the file system": resolving
//        the index file's path walks the namespace (one traversal per component), and
//     2. reading the index file traverses its physical extent map,
//     3. the result is a *file name*, so resolving it walks the namespace again
//        (one traversal per path component), and
//     4. reading the target block traverses that file's physical extent map.
//
//   hFAD: the search term hits the full-text index (one traversal) and yields an object
//   id; the object's extent tree is the only other index between the id and the data.
//
// Reported counters are hfad::stats deltas per lookup: index_traversals is the paper's
// quantity; dir_components is the hierarchical walk length. Wall-clock is secondary —
// the claim is about structure.
#include <benchmark/benchmark.h>

#include <map>
#include <memory>
#include <string>

#include "src/common/stats.h"
#include "src/core/filesystem.h"
#include "src/hierfs/hierfs.h"
#include "src/storage/block_device.h"

namespace {

using hfad::MemoryBlockDevice;
using hfad::core::FileSystem;
using hfad::core::FileSystemOptions;
namespace stats = hfad::stats;

constexpr int kFilesPerDir = 32;

std::string TermFor(int i) { return "needle" + std::to_string(i); }

std::string ContentFor(int i) {
  return "document body mentioning " + TermFor(i) + " among other words";
}

// Directory path of depth `depth` for file i: /d0/d1/.../f<i>.
std::string DeepPath(int depth, int i) {
  std::string p;
  for (int d = 0; d < depth; d++) {
    p += "/dir" + std::to_string(d);
  }
  return p + "/file" + std::to_string(i);
}

// ---- hierarchical search stack ----

struct HierStack {
  explicit HierStack(int depth) {
    auto fs_or = hfad::hierfs::HierFs::Create(
        std::make_shared<MemoryBlockDevice>(512ull << 20));
    fs = std::move(fs_or).value();
    std::string dir;
    for (int d = 0; d < depth; d++) {
      dir += "/dir" + std::to_string(d);
      (void)fs->Mkdir(dir);
    }
    // Data files plus the search-index file, which lives IN the file system.
    std::string index_blob;
    for (int i = 0; i < kFilesPerDir; i++) {
      std::string path = DeepPath(depth, i);
      auto ino = fs->CreateFile(path);
      (void)fs->Write(*ino, 0, ContentFor(i));
      index_blob += TermFor(i) + " " + path + "\n";
    }
    auto idx = fs->CreateFile("/search.idx");
    (void)fs->Write(*idx, 0, index_blob);
  }

  // The full search-term -> data-block path.
  std::string Lookup(const std::string& term) {
    // 1+2: find and read the index file (namespace walk + extent traversal).
    auto idx_ino = fs->ResolvePath("/search.idx");
    std::string blob;
    (void)fs->Read(*idx_ino, 0, 1 << 20, &blob);
    // Parse term -> path.
    std::string path;
    size_t pos = 0;
    while (pos < blob.size()) {
      size_t eol = blob.find('\n', pos);
      size_t sp = blob.find(' ', pos);
      if (blob.compare(pos, sp - pos, term) == 0) {
        path = blob.substr(sp + 1, eol - sp - 1);
        break;
      }
      pos = eol + 1;
    }
    // 3: resolve the file name through the hierarchy.
    auto ino = fs->ResolvePath(path);
    // 4: read the data block through the file's physical index.
    std::string block;
    (void)fs->Read(*ino, 0, 4096, &block);
    return block;
  }

  std::unique_ptr<hfad::hierfs::HierFs> fs;
};

// ---- hFAD native stack ----

struct HfadStack {
  HfadStack() {
    FileSystemOptions options;
    options.lazy_indexing_threads = 0;
    auto fs_or = FileSystem::Create(std::make_shared<MemoryBlockDevice>(512ull << 20),
                                    options);
    fs = std::move(fs_or).value();
    for (int i = 0; i < kFilesPerDir; i++) {
      auto oid = fs->Create();
      (void)fs->Write(*oid, 0, ContentFor(i));
      (void)fs->IndexContent(*oid);
    }
  }

  std::string Lookup(const std::string& term) {
    auto ids = fs->Lookup({{"FULLTEXT", term}});
    std::string block;
    (void)fs->Read((*ids)[0], 0, 4096, &block);
    return block;
  }

  std::unique_ptr<FileSystem> fs;
};

void BM_SearchToBlock_Hierarchical(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  HierStack stack(depth);
  int i = 0;
  stats::Snapshot before = stats::Snapshot::Take();
  for (auto _ : state) {
    std::string block = stack.Lookup(TermFor(i % kFilesPerDir));
    benchmark::DoNotOptimize(block.data());
    i++;
  }
  stats::Snapshot delta = stats::Snapshot::Take().Delta(before);
  double n = static_cast<double>(state.iterations());
  state.counters["index_traversals"] =
      static_cast<double>(delta[stats::Counter::kIndexTraversals]) / n;
  state.counters["dir_components"] =
      static_cast<double>(delta[stats::Counter::kDirComponentsWalked]) / n;
  state.counters["lock_acqs"] =
      static_cast<double>(delta[stats::Counter::kLockAcquisitions]) / n;
  state.SetLabel("path depth " + std::to_string(depth));
}
BENCHMARK(BM_SearchToBlock_Hierarchical)->DenseRange(2, 10, 2);

void BM_SearchToBlock_Hfad(benchmark::State& state) {
  HfadStack stack;
  int i = 0;
  stats::Snapshot before = stats::Snapshot::Take();
  for (auto _ : state) {
    std::string block = stack.Lookup(TermFor(i % kFilesPerDir));
    benchmark::DoNotOptimize(block.data());
    i++;
  }
  stats::Snapshot delta = stats::Snapshot::Take().Delta(before);
  double n = static_cast<double>(state.iterations());
  state.counters["index_traversals"] =
      static_cast<double>(delta[stats::Counter::kIndexTraversals]) / n;
  state.counters["dir_components"] =
      static_cast<double>(delta[stats::Counter::kDirComponentsWalked]) / n;
  state.counters["lock_acqs"] =
      static_cast<double>(delta[stats::Counter::kLockAcquisitions]) / n;
  state.SetLabel("flat namespace (depth-independent)");
}
BENCHMARK(BM_SearchToBlock_Hfad);

// Pure path resolution (no search), the everyday namespace cost: component walk vs one
// full-path probe.
void BM_PathResolve_Hierarchical(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  HierStack stack(depth);
  std::string path = DeepPath(depth, 7);
  for (auto _ : state) {
    auto ino = stack.fs->ResolvePath(path);
    benchmark::DoNotOptimize(ino.ok());
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("depth " + std::to_string(depth));
}
BENCHMARK(BM_PathResolve_Hierarchical)->DenseRange(2, 10, 2);

void BM_PathResolve_HfadPosixTag(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  FileSystemOptions options;
  options.lazy_indexing_threads = 0;
  auto fs = std::move(FileSystem::Create(std::make_shared<MemoryBlockDevice>(512ull << 20),
                                         options))
                .value();
  std::string path = DeepPath(depth, 7);
  auto oid = fs->Create({{"POSIX", path}});
  for (auto _ : state) {
    auto ids = fs->Lookup({{"POSIX", path}});
    benchmark::DoNotOptimize(ids.ok());
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("depth " + std::to_string(depth) + " (one probe)");
}
BENCHMARK(BM_PathResolve_HfadPosixTag)->DenseRange(2, 10, 2);

}  // namespace

BENCHMARK_MAIN();
