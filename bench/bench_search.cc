// C4 (§1, §2.1): users find data by describing what they want, not where it lives.
//
// Measures full-text query latency and ranking cost vs corpus size, conjunction
// selectivity effects, and the ingest-side cost of eager vs lazy (§3.4 background)
// indexing.
#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "src/btree/btree.h"
#include "src/common/random.h"
#include "src/fulltext/fulltext.h"
#include "src/storage/block_device.h"
#include "src/storage/buddy_allocator.h"
#include "src/storage/pager.h"

namespace {

using hfad::BuddyAllocator;
using hfad::MemoryBlockDevice;
using hfad::Pager;
using hfad::Random;
using hfad::kPageSize;
namespace ft = hfad::fulltext;

constexpr uint64_t kHeap = 1ull << 30;

// A synthetic document: Zipf-ish vocabulary plus designated marker terms.
std::string MakeDoc(Random* rng, int vocab, int words, const std::string& extra) {
  std::string doc = extra;
  for (int w = 0; w < words; w++) {
    doc += " word" + std::to_string(rng->Skewed(20) % vocab);
  }
  return doc;
}

struct Corpus {
  explicit Corpus(int docs)
      : dev(kPageSize + kHeap),
        pager(&dev, 16384),
        alloc(kPageSize, kHeap),
        tree(&pager, &alloc, 0),
        index(&tree) {
    Random rng(99);
    for (int d = 1; d <= docs; d++) {
      std::string extra;
      if (d % 10 == 0) {
        extra += " commonmarker";
      }
      if (d % 100 == 0) {
        extra += " raremarker";
      }
      (void)index.IndexDocument(d, MakeDoc(&rng, 500, 40, extra));
    }
  }

  MemoryBlockDevice dev;
  Pager pager;
  BuddyAllocator alloc;
  hfad::btree::BTree tree;
  ft::FullTextIndex index;
};

void BM_SingleTermQuery(benchmark::State& state) {
  Corpus corpus(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto hits = corpus.index.Search({"commonmarker"});
    benchmark::DoNotOptimize(hits.ok());
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(std::to_string(state.range(0)) + " docs");
}
BENCHMARK(BM_SingleTermQuery)->Arg(1000)->Arg(10000)->Arg(50000)->Unit(benchmark::kMicrosecond);

void BM_ConjunctionQuery(benchmark::State& state) {
  Corpus corpus(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    // Selective conjunction: 10% of docs carry commonmarker, 1% raremarker.
    auto hits = corpus.index.Search({"commonmarker", "raremarker"});
    benchmark::DoNotOptimize(hits.ok());
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(std::to_string(state.range(0)) + " docs");
}
BENCHMARK(BM_ConjunctionQuery)->Arg(1000)->Arg(10000)->Arg(50000)->Unit(benchmark::kMicrosecond);

void BM_RankedTopK(benchmark::State& state) {
  Corpus corpus(10000);
  for (auto _ : state) {
    auto hits = corpus.index.Search({"commonmarker"}, 10);
    benchmark::DoNotOptimize(hits.ok());
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("top-10 of ~1000 matches, BM25");
}
BENCHMARK(BM_RankedTopK)->Unit(benchmark::kMicrosecond);

void BM_PhraseQuery(benchmark::State& state) {
  MemoryBlockDevice dev(kPageSize + kHeap);
  Pager pager(&dev, 16384);
  BuddyAllocator alloc(kPageSize, kHeap);
  hfad::btree::BTree tree(&pager, &alloc, 0);
  ft::FullTextIndex index(&tree);
  Random rng(5);
  for (int d = 1; d <= 5000; d++) {
    std::string doc = MakeDoc(&rng, 300, 30, "");
    if (d % 20 == 0) {
      doc += " object based storage device";
    }
    (void)index.IndexDocument(d, doc);
  }
  for (auto _ : state) {
    auto hits = index.SearchPhrase({"object", "based", "storage", "device"});
    benchmark::DoNotOptimize(hits.ok());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PhraseQuery)->Unit(benchmark::kMicrosecond);

// Ingest cost, eager: caller pays indexing inline.
void BM_IngestEager(benchmark::State& state) {
  MemoryBlockDevice dev(kPageSize + kHeap);
  Pager pager(&dev, 16384);
  BuddyAllocator alloc(kPageSize, kHeap);
  hfad::btree::BTree tree(&pager, &alloc, 0);
  ft::FullTextIndex index(&tree);
  Random rng(7);
  uint64_t d = 0;
  for (auto _ : state) {
    state.PauseTiming();
    std::string doc = MakeDoc(&rng, 500, 40, "");
    state.ResumeTiming();
    (void)index.IndexDocument(++d, doc);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IngestEager);

// Ingest cost, lazy: caller only enqueues; §3.4's background threads do the indexing.
// items/s here is the *submission* rate the foreground thread observes.
void BM_IngestLazySubmit(benchmark::State& state) {
  MemoryBlockDevice dev(kPageSize + kHeap);
  Pager pager(&dev, 16384);
  BuddyAllocator alloc(kPageSize, kHeap);
  hfad::btree::BTree tree(&pager, &alloc, 0);
  ft::FullTextIndex index(&tree);
  ft::LazyIndexer lazy(&index, static_cast<int>(state.range(0)));
  Random rng(7);
  uint64_t d = 0;
  for (auto _ : state) {
    state.PauseTiming();
    std::string doc = MakeDoc(&rng, 500, 40, "");
    state.ResumeTiming();
    lazy.Submit(++d, std::move(doc));
  }
  lazy.Drain();  // Outside the timed region: the cost lazy indexing hides.
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(std::to_string(state.range(0)) + " worker(s)");
}
BENCHMARK(BM_IngestLazySubmit)->Arg(1)->Arg(4);

}  // namespace

BENCHMARK_MAIN();
