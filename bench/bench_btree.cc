// C6 (§3.4): BDB-style btrees suffice for object tables, metadata, and string indexes;
// the counted extent tree makes middle-insertion O(log n).
//
// Includes the DESIGN.md ablation: hFAD's counted extent tree vs a plain offset-keyed
// map, where inserting in the middle must re-key every subsequent extent (the cost the
// paper's btree choice avoids).
#include <benchmark/benchmark.h>

#include <map>
#include <memory>
#include <string>

#include "src/btree/btree.h"
#include "src/common/random.h"
#include "src/extent/extent_tree.h"
#include "src/storage/block_device.h"
#include "src/storage/buddy_allocator.h"
#include "src/storage/pager.h"

namespace {

using hfad::BuddyAllocator;
using hfad::MemoryBlockDevice;
using hfad::Pager;
using hfad::Random;
using hfad::kPageSize;

constexpr uint64_t kHeap = 512ull << 20;

struct Volume {
  Volume() : dev(kPageSize + kHeap), pager(&dev, 8192), alloc(kPageSize, kHeap) {}
  MemoryBlockDevice dev;
  Pager pager;
  BuddyAllocator alloc;
};

// Point lookups vs tree size.
void BM_BtreeGet(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Volume vol;
  hfad::btree::BTree tree(&vol.pager, &vol.alloc, 0);
  for (int i = 0; i < n; i++) {
    (void)tree.Put("key" + std::to_string(i), "value" + std::to_string(i));
  }
  Random rng(1);
  for (auto _ : state) {
    auto v = tree.Get("key" + std::to_string(rng.Uniform(n)));
    benchmark::DoNotOptimize(v.ok());
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["height"] = static_cast<double>(*tree.Height());
}
BENCHMARK(BM_BtreeGet)->Arg(1000)->Arg(10000)->Arg(100000);

// Insert throughput vs existing tree size.
void BM_BtreePut(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Volume vol;
  hfad::btree::BTree tree(&vol.pager, &vol.alloc, 0);
  for (int i = 0; i < n; i++) {
    (void)tree.Put("seed" + std::to_string(i), "v");
  }
  uint64_t next = 0;
  for (auto _ : state) {
    (void)tree.Put("key" + std::to_string(next++), "value");
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BtreePut)->Arg(1000)->Arg(100000);

// Ordered range scan throughput.
void BM_BtreeScan(benchmark::State& state) {
  Volume vol;
  hfad::btree::BTree tree(&vol.pager, &vol.alloc, 0);
  for (int i = 0; i < 100000; i++) {
    char key[16];
    snprintf(key, sizeof(key), "k%07d", i);
    (void)tree.Put(key, "v");
  }
  for (auto _ : state) {
    uint64_t count = 0;
    (void)tree.Scan("k0050000", "k0060000", [&](hfad::Slice, hfad::Slice) {
      count++;
      return true;
    });
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_BtreeScan);

// Delete throughput (with page reclamation).
void BM_BtreeDelete(benchmark::State& state) {
  Volume vol;
  hfad::btree::BTree tree(&vol.pager, &vol.alloc, 0);
  uint64_t next = 0;
  for (auto _ : state) {
    state.PauseTiming();
    std::string key = "key" + std::to_string(next++);
    (void)tree.Put(key, "value");
    state.ResumeTiming();
    (void)tree.Delete(key);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BtreeDelete);

// ---- Extent tree: middle insertion, counted tree vs re-keyed flat map (ablation) ----

// hFAD: counted extent tree, O(log n) insert anywhere.
void BM_ExtentInsertMiddle_Counted(benchmark::State& state) {
  const uint64_t object_size = static_cast<uint64_t>(state.range(0));
  Volume vol;
  hfad::extent::ExtentTree tree(&vol.pager, &vol.alloc, 0);
  std::string base(object_size, 'b');
  (void)tree.Write(0, base);
  std::string piece(4096, 'i');
  for (auto _ : state) {
    (void)tree.Insert(tree.Size() / 2, piece);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 4096);
  state.SetLabel("object " + std::to_string(object_size >> 20) + " MiB");
}
BENCHMARK(BM_ExtentInsertMiddle_Counted)
    ->Arg(1 << 20)
    ->Arg(16 << 20)
    ->Arg(64 << 20)
    ->Unit(benchmark::kMicrosecond);

// Ablation: offset-keyed extent map. Middle insertion re-keys every later extent —
// the O(n) the paper's counted-btree design avoids. (Map is in memory, which flatters
// it; the shape is what matters.)
void BM_ExtentInsertMiddle_Rekeyed(benchmark::State& state) {
  const uint64_t object_size = static_cast<uint64_t>(state.range(0));
  constexpr uint64_t kExtent = 64 * 1024;
  std::map<uint64_t, std::pair<uint64_t, uint64_t>> extents;  // offset -> (dev, len)
  for (uint64_t off = 0; off < object_size; off += kExtent) {
    extents[off] = {off, kExtent};
  }
  for (auto _ : state) {
    uint64_t insert_at = object_size / 2;
    // Split containing extent, then shift the key of every subsequent extent by 4096.
    std::map<uint64_t, std::pair<uint64_t, uint64_t>> shifted;
    for (auto it = extents.begin(); it != extents.end(); ++it) {
      if (it->first >= insert_at) {
        shifted[it->first + 4096] = it->second;
      } else {
        shifted[it->first] = it->second;
      }
    }
    shifted[insert_at] = {0, 4096};
    extents = std::move(shifted);
    benchmark::DoNotOptimize(extents.size());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 4096);
  state.SetLabel("object " + std::to_string(object_size >> 20) + " MiB");
  state.counters["extents"] = static_cast<double>(extents.size());
}
BENCHMARK(BM_ExtentInsertMiddle_Rekeyed)
    ->Arg(1 << 20)
    ->Arg(16 << 20)
    ->Arg(64 << 20)
    ->Unit(benchmark::kMicrosecond);

// Sequential write/read bandwidth through the extent tree.
void BM_ExtentSequentialWrite(benchmark::State& state) {
  Volume vol;
  std::string chunk(64 * 1024, 'w');
  for (auto _ : state) {
    state.PauseTiming();
    hfad::extent::ExtentTree tree(&vol.pager, &vol.alloc, 0);
    state.ResumeTiming();
    for (int i = 0; i < 256; i++) {
      (void)tree.Write(tree.Size(), chunk);
    }
    state.PauseTiming();
    (void)tree.Clear();
    state.ResumeTiming();
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 256 * 64 * 1024);
}
BENCHMARK(BM_ExtentSequentialWrite)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
