// Lazy background tag indexing (§3.4 applied to the namespace): tag-storm ingest
// throughput with inline posting updates vs. journaled intents drained by the
// background bulk indexer, plus the strict/relaxed read-visibility cost.
//
// The headline comparison (BM_TagStormIngest) runs against a posting index that does
// NOT fit the page cache, on a device that charges a seek per read: that is the regime
// the lazy design targets — the inline path pays a cold posting-btree descent before it
// can acknowledge, the lazy path acknowledges at journal + reverse-map speed and the
// descent happens behind the ack. The *Warm variants keep everything RAM-resident to
// show the floor: when the index is cached, deferral buys little and costs nothing.
#include <benchmark/benchmark.h>

#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "src/common/random.h"
#include "src/core/filesystem.h"
#include "src/storage/block_device.h"

namespace {

using hfad::BlockDevice;
using hfad::MemoryBlockDevice;
using hfad::Random;
using hfad::Slice;
using hfad::Status;
using hfad::WriteExtent;
using hfad::core::FileSystem;
using hfad::core::FileSystemOptions;
using hfad::core::ObjectId;

constexpr uint64_t kDev = 1ull << 30;

// Charges a fixed latency per Read — the cache-miss seek that inline posting updates
// put on the acknowledge path. Writes and Sync are free: in this stack every write is
// either a sequential journal append or a sorted, coalesced checkpoint batch, which is
// exactly the IO shape the paper argues journaling buys, so charging them would blur
// the variable under test.
class SeekChargedDevice : public BlockDevice {
 public:
  SeekChargedDevice(std::shared_ptr<BlockDevice> base, std::chrono::microseconds seek)
      : base_(std::move(base)), seek_(seek) {}

  Status Read(uint64_t offset, size_t size, std::string* out) const override {
    // Busy-wait: sleep_for rounds a 25us charge up to timer-slack granularity, and the
    // charge must land on the calling thread's CPU clock to be visible either way the
    // harness reports time.
    auto end = std::chrono::steady_clock::now() + seek_;
    while (std::chrono::steady_clock::now() < end) {
    }
    return base_->Read(offset, size, out);
  }
  Status Write(uint64_t offset, Slice data) override { return base_->Write(offset, data); }
  Status WriteBatch(std::vector<WriteExtent> extents) override {
    return base_->WriteBatch(std::move(extents));
  }
  Status Sync() override { return base_->Sync(); }
  uint64_t Size() const override { return base_->Size(); }

 private:
  std::shared_ptr<BlockDevice> base_;
  std::chrono::microseconds seek_;
};

std::unique_ptr<FileSystem> MakeFs(bool lazy_tags) {
  FileSystemOptions options;
  options.lazy_indexing_threads = 0;
  options.lazy_tag_indexing = lazy_tags;
  // A deep queue: the bench measures acknowledge throughput (the relaxed-mode ingest
  // win), not worker backpressure.
  options.tag_intent_queue_capacity = 1 << 16;
  return std::move(FileSystem::Create(std::make_shared<MemoryBlockDevice>(kDev),
                                      options))
      .value();
}

// Values padded so the seeded posting tree spans thousands of leaves — more leaves
// than storm operations, so a random-value storm stays miss-dominated instead of
// paging the whole tree in and measuring RAM.
std::string PaddedValue(uint64_t i) {
  std::string v = "v" + std::to_string(1000000 + i);
  v.resize(128, 'x');
  return v;
}

constexpr int kSeedPostings = 100000;
constexpr int kStormOids = 16;

// Tag-storm ingest, cold index: acknowledged AddTag throughput against a pre-seeded
// 100k-posting UDEF index reopened with a 256-page cache on a 25us-per-read device.
// Arg(0) = inline (every ack pays a cold posting-btree descent), Arg(1) = lazy (ack is
// journal append + reverse-map insert; the descent happens behind the ack and is
// drained untimed). Iteration count is pinned so every repetition measures the same
// cold burst rather than auto-scaling into a warmed cache.
void BM_TagStormIngest(benchmark::State& state) {
  const bool lazy = state.range(0) != 0;
  auto base = std::make_shared<MemoryBlockDevice>(kDev);
  auto device =
      std::make_shared<SeekChargedDevice>(base, std::chrono::microseconds(25));

  {
    // Seed with ascending values (fresh pages, no cold reads), then close so the
    // reopened pager starts empty.
    FileSystemOptions seed_options;
    seed_options.lazy_indexing_threads = 0;
    auto seed_fs = std::move(FileSystem::Create(device, seed_options)).value();
    std::vector<ObjectId> seed_oids;
    for (int i = 0; i < kStormOids; i++) {
      seed_oids.push_back(*seed_fs->Create());
    }
    for (int i = 0; i < kSeedPostings;) {
      auto batch = seed_fs->NewBatch();
      for (int k = 0; k < 512 && i < kSeedPostings; k++, i++) {
        (void)batch.AddTag(seed_oids[i % seed_oids.size()], {"UDEF", PaddedValue(i)});
      }
      if (!batch.Commit().ok()) {
        state.SkipWithError("seed commit failed");
        return;
      }
    }
  }

  FileSystemOptions options;
  options.lazy_indexing_threads = 0;
  options.lazy_tag_indexing = lazy;
  options.tag_intent_queue_capacity = 1 << 16;
  options.osd.pager_capacity_pages = 256;
  auto fs = std::move(FileSystem::Open(device, options)).value();
  std::vector<ObjectId> oids;
  for (int i = 0; i < kStormOids; i++) {
    oids.push_back(*fs->Create());
  }
  Random rng(42);
  uint64_t i = 0;
  for (auto _ : state) {
    ObjectId oid = oids[i % oids.size()];
    benchmark::DoNotOptimize(
        fs->AddTag(oid, {"UDEF", PaddedValue(rng.Uniform(kSeedPostings))}).ok());
    i++;
  }
  (void)fs->WaitForTagIndexing();  // Untimed: relaxed mode's deferred work.
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(lazy ? "lazy (relaxed ack)" : "inline");
}
BENCHMARK(BM_TagStormIngest)
    ->Arg(0)
    ->Arg(1)
    ->Iterations(4096)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

// Tag-storm ingest, warm index: same comparison with everything RAM-resident and the
// posting tree growing from empty. This is the floor for the lazy win — when every
// descent is a cache hit, deferral saves only the descent's CPU.
void BM_TagStormIngestWarm(benchmark::State& state) {
  const bool lazy = state.range(0) != 0;
  auto fs = MakeFs(lazy);
  std::vector<ObjectId> oids;
  for (int i = 0; i < 1024; i++) {
    oids.push_back(*fs->Create());
  }
  uint64_t i = 0;
  for (auto _ : state) {
    ObjectId oid = oids[i % oids.size()];
    benchmark::DoNotOptimize(
        fs->AddTag(oid, {"UDEF", "storm" + std::to_string(i)}).ok());
    i++;
  }
  (void)fs->WaitForTagIndexing();  // Untimed: relaxed mode's deferred work.
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(lazy ? "lazy (relaxed ack)" : "inline");
}
BENCHMARK(BM_TagStormIngestWarm)->Arg(0)->Arg(1)->Unit(benchmark::kMicrosecond);

// Batched warm storm: NamespaceBatch commits of 16 adds — one journal record either
// way; lazy additionally collapses the posting work into sorted bulk loads.
void BM_TagStormBatchedIngest(benchmark::State& state) {
  const bool lazy = state.range(0) != 0;
  auto fs = MakeFs(lazy);
  std::vector<ObjectId> oids;
  for (int i = 0; i < 1024; i++) {
    oids.push_back(*fs->Create());
  }
  uint64_t i = 0;
  for (auto _ : state) {
    auto batch = fs->NewBatch();
    for (int k = 0; k < 16; k++) {
      (void)batch.AddTag(oids[(i + k) % oids.size()],
                         {"UDEF", "batch" + std::to_string(i + k)});
    }
    benchmark::DoNotOptimize(batch.Commit().ok());
    i += 16;
  }
  (void)fs->WaitForTagIndexing();
  state.SetItemsProcessed(state.iterations() * 16);
  state.SetLabel(lazy ? "lazy (relaxed ack)" : "inline");
}
BENCHMARK(BM_TagStormBatchedIngest)->Arg(0)->Arg(1)->Unit(benchmark::kMicrosecond);

// Read-side visibility cost on a quiescent lazy volume: strict pays one horizon check
// per queried tag, relaxed none. Both should be within noise of each other once the
// queue is drained — the point is that strict is cheap when there is nothing to wait
// for.
void BM_FindVisibility(benchmark::State& state) {
  const bool strict = state.range(0) != 0;
  auto fs = MakeFs(true);
  for (int i = 0; i < 4096; i++) {
    auto oid = fs->Create();
    (void)fs->AddTag(*oid, {"UDEF", "q" + std::to_string(i % 64)});
  }
  (void)fs->WaitForTagIndexing();
  hfad::query::FindOptions options;
  options.visibility = strict ? hfad::query::Visibility::kStrict
                              : hfad::query::Visibility::kRelaxed;
  Random rng(9);
  for (auto _ : state) {
    auto page = fs->Find(hfad::Slice("UDEF:q" + std::to_string(rng.Uniform(64))),
                         options);
    benchmark::DoNotOptimize(page.ok());
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(strict ? "strict" : "relaxed");
}
BENCHMARK(BM_FindVisibility)->Arg(1)->Arg(0)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
