// C3 (§3.1.2): byte-level insert and range-removal in the middle of an object are cheap
// because object data lives in a (counted) btree of extents.
//
// hFAD: ExtentTree::Insert is O(log n) regardless of object size.
// POSIX/hierfs: the only way to grow the middle of a file is read-shift-rewrite —
// O(size - offset) bytes of IO. The crossover and growth curves are the experiment.
#include <benchmark/benchmark.h>

#include <memory>
#include <string>

#include "src/core/filesystem.h"
#include "src/hierfs/hierfs.h"
#include "src/storage/block_device.h"

namespace {

using hfad::MemoryBlockDevice;
using hfad::core::FileSystem;
using hfad::core::FileSystemOptions;

constexpr uint64_t kInsertSize = 4096;

void BM_InsertMiddle_Hfad(benchmark::State& state) {
  const uint64_t object_size = static_cast<uint64_t>(state.range(0));
  FileSystemOptions options;
  options.lazy_indexing_threads = 0;
  options.osd.journaling = false;  // Match hierfs.
  auto fs = std::move(FileSystem::Create(std::make_shared<MemoryBlockDevice>(1ull << 30),
                                         options))
                .value();
  auto oid = fs->Create();
  std::string chunk(1 << 20, 'b');
  for (uint64_t written = 0; written < object_size; written += chunk.size()) {
    (void)fs->Write(*oid, written, chunk);
  }
  std::string piece(kInsertSize, 'i');
  for (auto _ : state) {
    auto size = fs->Size(*oid);
    (void)fs->Insert(*oid, *size / 2, piece);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * kInsertSize);
  state.SetLabel(std::to_string(object_size >> 20) + " MiB object");
}
BENCHMARK(BM_InsertMiddle_Hfad)
    ->Arg(64 << 10)
    ->Arg(1 << 20)
    ->Arg(8 << 20)
    ->Arg(64 << 20)
    ->Unit(benchmark::kMicrosecond);

void BM_InsertMiddle_PosixRewrite(benchmark::State& state) {
  const uint64_t object_size = static_cast<uint64_t>(state.range(0));
  auto fs = std::move(hfad::hierfs::HierFs::Create(
                          std::make_shared<MemoryBlockDevice>(1ull << 30)))
                .value();
  auto ino = fs->CreateFile("/victim");
  std::string chunk(1 << 20, 'b');
  for (uint64_t written = 0; written < object_size; written += chunk.size()) {
    (void)fs->Write(*ino, written, chunk);
  }
  std::string piece(kInsertSize, 'i');
  for (auto _ : state) {
    auto st = fs->StatIno(*ino);
    (void)fs->InsertViaRewrite(*ino, st->size / 2, piece);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * kInsertSize);
  state.SetLabel(std::to_string(object_size >> 20) + " MiB file");
}
BENCHMARK(BM_InsertMiddle_PosixRewrite)
    ->Arg(64 << 10)
    ->Arg(1 << 20)
    ->Arg(8 << 20)
    ->Arg(64 << 20)
    ->Unit(benchmark::kMicrosecond);

// The matching removal: hFAD's two-off_t truncate vs POSIX read-shift-rewrite.
void BM_RemoveMiddle_Hfad(benchmark::State& state) {
  const uint64_t object_size = static_cast<uint64_t>(state.range(0));
  FileSystemOptions options;
  options.lazy_indexing_threads = 0;
  options.osd.journaling = false;
  auto fs = std::move(FileSystem::Create(std::make_shared<MemoryBlockDevice>(1ull << 30),
                                         options))
                .value();
  auto oid = fs->Create();
  std::string chunk(1 << 20, 'b');
  for (uint64_t written = 0; written < object_size; written += chunk.size()) {
    (void)fs->Write(*oid, written, chunk);
  }
  for (auto _ : state) {
    auto size = fs->Size(*oid);
    if (*size < 2 * kInsertSize) {
      state.PauseTiming();
      for (uint64_t w = *size; w < object_size; w += chunk.size()) {
        (void)fs->Write(*oid, w, chunk);
      }
      state.ResumeTiming();
    }
    (void)fs->Truncate(*oid, *size / 2, kInsertSize);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * kInsertSize);
  state.SetLabel(std::to_string(object_size >> 20) + " MiB object");
}
BENCHMARK(BM_RemoveMiddle_Hfad)
    ->Arg(1 << 20)
    ->Arg(64 << 20)
    ->Unit(benchmark::kMicrosecond);

void BM_RemoveMiddle_PosixRewrite(benchmark::State& state) {
  const uint64_t object_size = static_cast<uint64_t>(state.range(0));
  auto fs = std::move(hfad::hierfs::HierFs::Create(
                          std::make_shared<MemoryBlockDevice>(1ull << 30)))
                .value();
  auto ino = fs->CreateFile("/victim");
  std::string chunk(1 << 20, 'b');
  for (uint64_t written = 0; written < object_size; written += chunk.size()) {
    (void)fs->Write(*ino, written, chunk);
  }
  for (auto _ : state) {
    auto st = fs->StatIno(*ino);
    uint64_t size = st->size;
    if (size < 2 * kInsertSize) {
      state.PauseTiming();
      for (uint64_t w = size; w < object_size; w += chunk.size()) {
        (void)fs->Write(*ino, w, chunk);
      }
      size = object_size;
      state.ResumeTiming();
    }
    // POSIX removal from the middle: read tail past the hole, write it back shifted,
    // truncate the end.
    uint64_t hole = size / 2;
    std::string tail;
    (void)fs->Read(*ino, hole + kInsertSize, size - hole - kInsertSize, &tail);
    (void)fs->Write(*ino, hole, tail);
    (void)fs->Truncate(*ino, size - kInsertSize);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * kInsertSize);
  state.SetLabel(std::to_string(object_size >> 20) + " MiB file");
}
BENCHMARK(BM_RemoveMiddle_PosixRewrite)
    ->Arg(1 << 20)
    ->Arg(64 << 20)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
