// The durability hot path: journal commit storms, checkpoint-under-load, and write-back
// coalescing.
//
// MemoryBlockDevice::Sync() is free, which would make any fsync-amortization win
// invisible; SlowSyncDevice charges a fixed latency per Sync (default 100us, roughly one
// NVMe FLUSH) so the benchmarks measure how many acknowledged records one device sync
// amortizes across. The numbers to watch:
//
//   * CommitStorm@8 vs @1      — how group commit scales when every op syncs.
//   * AppendDuringSync         — whether appenders ride out an in-flight fsync (the
//                                leader/follower protocol) or queue behind it.
//   * OsdSyncStorm / TagStorm  — the same window measured end-to-end through the OSD and
//                                FileSystem layers (journal_mu_ plumbing included).
//   * CheckpointUnderLoad      — op throughput while the journal keeps filling (NoSpace
//                                recovery vs threshold-triggered checkpoints).
//   * FlushCoalescing          — device writes issued per checkpoint flush of scattered
//                                vs adjacent dirty pages (sorted, coalesced write-back).
//
// BENCH_journal.json holds the checked-in trajectory (pre- and post-group-commit);
// docs/BENCHMARKS.md has the regeneration commands.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "src/common/stats.h"
#include "src/core/filesystem.h"
#include "src/io/io_engine.h"
#include "src/journal/journal.h"
#include "src/osd/osd.h"
#include "src/storage/block_device.h"
#include "src/storage/pager.h"

namespace {

using hfad::BlockDevice;
using hfad::FaultyBlockDevice;
using hfad::MemoryBlockDevice;
using hfad::Slice;
using hfad::Status;
using hfad::core::FileSystem;
using hfad::core::FileSystemOptions;
using hfad::journal::Journal;
using hfad::osd::Osd;
using hfad::osd::OsdOptions;
namespace stats = hfad::stats;

// Charges a fixed latency per Sync — the cost group commit exists to amortize. Reads and
// writes pass through untouched (RAM-speed, like a device write cache).
class SlowSyncDevice : public BlockDevice {
 public:
  SlowSyncDevice(std::shared_ptr<BlockDevice> base, std::chrono::microseconds sync_cost)
      : base_(std::move(base)), sync_cost_(sync_cost) {}

  Status Read(uint64_t offset, size_t size, std::string* out) const override {
    return base_->Read(offset, size, out);
  }
  Status Write(uint64_t offset, Slice data) override { return base_->Write(offset, data); }
  Status Sync() override {
    syncs_.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::sleep_for(sync_cost_);
    return base_->Sync();
  }
  uint64_t Size() const override { return base_->Size(); }

  uint64_t syncs() const { return syncs_.load(std::memory_order_relaxed); }

 private:
  std::shared_ptr<BlockDevice> base_;
  const std::chrono::microseconds sync_cost_;
  std::atomic<uint64_t> syncs_{0};
};

constexpr auto kSyncCost = std::chrono::microseconds(100);
constexpr uint64_t kJournalRegion = 64ull * 1024 * 1024;

std::shared_ptr<SlowSyncDevice> g_slow;
std::unique_ptr<Journal> g_journal;
std::unique_ptr<hfad::io::IoEngine> g_engine;
std::unique_ptr<Osd> g_osd;
std::unique_ptr<FileSystem> g_fs;
std::atomic<int> g_storm_active{0};

// ---------------------------------------------------------------- raw journal storms

// Every iteration is one acknowledged durable record: Append + Commit. With one thread
// this is the floor (one sync per record); with 8 it measures how many threads one
// leader's sync covers.
void BM_CommitStorm(benchmark::State& state) {
  if (state.thread_index() == 0) {
    g_slow = std::make_shared<SlowSyncDevice>(
        std::make_shared<MemoryBlockDevice>(kJournalRegion), kSyncCost);
    g_journal = std::make_unique<Journal>(g_slow.get(), 0, kJournalRegion);
  }
  const std::string payload = "commit-storm-record-" + std::to_string(state.thread_index());
  for (auto _ : state) {
    auto seq = g_journal->Append(payload);
    if (!seq.ok()) {  // Region full: reset (not measured as an error path).
      (void)g_journal->Reset();
      seq = g_journal->Append(payload);
    }
    benchmark::DoNotOptimize(seq.ok());
    Status s = g_journal->Commit();
    benchmark::DoNotOptimize(s.ok());
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    state.counters["syncs"] = static_cast<double>(g_slow->syncs());
    g_journal.reset();
    g_slow.reset();
  }
}
BENCHMARK(BM_CommitStorm)->ThreadRange(1, 8)->UseRealTime()->MeasureProcessCPUTime();

// The completion-driven commit path: 64 simulated clients spread across the benchmark
// threads, each keeping a window of Append+CommitAsync commits outstanding instead of
// blocking per record. One chained engine commit covers every record appended while the
// previous link's fsync was in flight, so throughput is bounded by window-per-sync, not
// threads-per-sync — the "thousands of in-flight commits on a handful of threads" shape,
// held to 64 here to compare against BM_CommitStorm@8's leader/follower ceiling.
void BM_AsyncCommitStorm(benchmark::State& state) {
  if (state.thread_index() == 0) {
    g_slow = std::make_shared<SlowSyncDevice>(
        std::make_shared<MemoryBlockDevice>(kJournalRegion), kSyncCost);
    g_journal = std::make_unique<Journal>(g_slow.get(), 0, kJournalRegion);
    g_engine = hfad::io::CreateIoEngine(g_slow.get(), hfad::io::IoEngineOptions{});
    g_journal->SetIoEngine(g_engine.get());
    g_storm_active.store(state.threads());
  }
  const int window = std::max(1, 64 / static_cast<int>(state.threads()));
  const std::string payload = "async-storm-record-" + std::to_string(state.thread_index());
  std::mutex mu;
  std::condition_variable cv;
  int outstanding = 0;
  uint64_t failures = 0;
  for (auto _ : state) {
    {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return outstanding < window; });
      ++outstanding;
    }
    auto seq = g_journal->Append(payload);
    if (!seq.ok()) {  // Region full: reset (not measured as an error path).
      (void)g_journal->Reset();
      seq = g_journal->Append(payload);
    }
    benchmark::DoNotOptimize(seq.ok());
    g_journal->CommitAsync(*seq, [&](Status s) {
      std::lock_guard<std::mutex> lock(mu);
      if (!s.ok()) ++failures;
      --outstanding;
      cv.notify_one();
    });
  }
  {  // Drain this thread's window before anyone tears the journal down.
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return outstanding == 0; });
  }
  state.SetItemsProcessed(state.iterations());
  if (failures != 0) state.SkipWithError("async commit failed");
  g_storm_active.fetch_sub(1);
  if (state.thread_index() == 0) {
    while (g_storm_active.load() != 0) std::this_thread::yield();
    state.counters["syncs"] = static_cast<double>(g_slow->syncs());
    state.counters["max_queue_depth"] = static_cast<double>(g_engine->max_queue_depth());
    g_journal.reset();  // The engine (still running) drains into the live journal...
    g_engine.reset();   // ...only after ~Journal has waited out the in-flight chain.
    g_slow.reset();
  }
}
BENCHMARK(BM_AsyncCommitStorm)->ThreadRange(1, 8)->UseRealTime()->MeasureProcessCPUTime();

// Mixed appenders and committers: each thread appends a burst of 8 records, then makes
// them durable with one Commit. The burst appends land while other threads' commits are
// mid-fsync — the path that serializes when Append must wait for an in-flight Sync.
void BM_AppendDuringSync(benchmark::State& state) {
  if (state.thread_index() == 0) {
    g_slow = std::make_shared<SlowSyncDevice>(
        std::make_shared<MemoryBlockDevice>(kJournalRegion), kSyncCost);
    g_journal = std::make_unique<Journal>(g_slow.get(), 0, kJournalRegion);
  }
  const std::string payload = "burst-record";
  int i = 0;
  for (auto _ : state) {
    auto seq = g_journal->Append(payload);
    if (!seq.ok()) {
      (void)g_journal->Reset();
      seq = g_journal->Append(payload);
    }
    benchmark::DoNotOptimize(seq.ok());
    if (++i % 8 == 0) {
      Status s = g_journal->Commit();
      benchmark::DoNotOptimize(s.ok());
    }
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    state.counters["syncs"] = static_cast<double>(g_slow->syncs());
    g_journal.reset();
    g_slow.reset();
  }
}
BENCHMARK(BM_AppendDuringSync)->ThreadRange(1, 8)->UseRealTime()->MeasureProcessCPUTime();

// ---------------------------------------------------------------- OSD / FS end to end

// fsync-per-op through the OSD: every iteration creates an object and makes it durable.
// Exercises journal_mu_ + the commit protocol together.
void BM_OsdSyncStorm(benchmark::State& state) {
  if (state.thread_index() == 0) {
    g_slow = std::make_shared<SlowSyncDevice>(
        std::make_shared<MemoryBlockDevice>(1ull << 30), kSyncCost);
    OsdOptions options;
    g_osd = std::move(Osd::Create(g_slow, options)).value();
  }
  for (auto _ : state) {
    auto oid = g_osd->CreateObject();
    benchmark::DoNotOptimize(oid.ok());
    Status s = g_osd->Sync();
    benchmark::DoNotOptimize(s.ok());
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    state.counters["syncs"] = static_cast<double>(g_slow->syncs());
    g_osd.reset();
    g_slow.reset();
  }
}
BENCHMARK(BM_OsdSyncStorm)->ThreadRange(1, 8)->UseRealTime()->MeasureProcessCPUTime();

// Tag storm with per-batch durability through the FileSystem: each iteration commits a
// NamespaceBatch of 4 tags and Syncs. The 8-thread number is ROADMAP perf target 2.
void BM_TagStormSync(benchmark::State& state) {
  if (state.thread_index() == 0) {
    g_slow = std::make_shared<SlowSyncDevice>(
        std::make_shared<MemoryBlockDevice>(1ull << 30), kSyncCost);
    FileSystemOptions options;
    options.lazy_indexing_threads = 0;
    g_fs = std::move(FileSystem::Create(g_slow, options)).value();
  }
  const std::string user = "user" + std::to_string(state.thread_index());
  uint64_t i = 0;
  for (auto _ : state) {
    auto batch = g_fs->NewBatch();
    auto oid = batch.Create({{"USER", user}});
    benchmark::DoNotOptimize(oid.ok());
    std::string n = std::to_string(i++);
    (void)batch.AddTag(*oid, {"UDEF", "a" + n});
    (void)batch.AddTag(*oid, {"UDEF", "b" + n});
    (void)batch.AddTag(*oid, {"APP", "bench"});
    Status s = batch.Commit();
    benchmark::DoNotOptimize(s.ok());
    s = g_fs->Sync();
    benchmark::DoNotOptimize(s.ok());
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    state.counters["syncs"] = static_cast<double>(g_slow->syncs());
    g_fs.reset();
    g_slow.reset();
  }
}
BENCHMARK(BM_TagStormSync)->ThreadRange(1, 8)->UseRealTime()->MeasureProcessCPUTime();

// Ops against a deliberately small journal so checkpoints trigger continuously: measures
// whether a tag storm stalls behind full checkpoints on the op path. No slow sync — the
// checkpoint's page write-back is the cost under test.
void BM_CheckpointUnderLoad(benchmark::State& state) {
  if (state.thread_index() == 0) {
    FileSystemOptions options;
    options.lazy_indexing_threads = 0;
    options.osd.journal_size = 256 * 1024;  // Fills every few hundred ops.
    g_fs = std::move(FileSystem::Create(std::make_shared<MemoryBlockDevice>(1ull << 30),
                                        options))
               .value();
  }
  const std::string user = "user" + std::to_string(state.thread_index());
  uint64_t i = 0;
  for (auto _ : state) {
    auto oid = g_fs->Create({{"USER", user}, {"UDEF", "n" + std::to_string(i++)}});
    benchmark::DoNotOptimize(oid.ok());
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    g_fs.reset();
  }
}
BENCHMARK(BM_CheckpointUnderLoad)->ThreadRange(1, 8)->UseRealTime()->MeasureProcessCPUTime();

// ---------------------------------------------------------------- write-back coalescing

// Dirty 256 4-KiB pages straight in the page cache (Arg 0: one adjacent run; Arg 1:
// strided, so nothing can merge), then Flush. device_writes_per_flush is the coalescing
// win: the sorted batched write-back collapses an adjacent dirty run into one device
// write, where the per-page path issued one write per page regardless of layout.
void BM_FlushCoalescing(benchmark::State& state) {
  const bool strided = state.range(0) != 0;
  const int pages = 256;
  auto base = std::make_shared<MemoryBlockDevice>(1ull << 30);
  auto faulty = std::make_shared<FaultyBlockDevice>(base);
  hfad::Pager pager(faulty.get(), 8192);
  uint64_t flushes = 0;
  const uint64_t writes_before = faulty->writes_attempted();
  for (auto _ : state) {
    for (int p = 0; p < pages; p++) {
      uint64_t off = hfad::kPageSize *
                     (1 + static_cast<uint64_t>(p) * (strided ? 2 : 1));
      auto page = pager.GetZeroed(off);
      (*page)->cdata()[0] = 'x';
      (*page)->MarkDirty();
    }
    benchmark::DoNotOptimize(pager.Flush().ok());
    flushes++;
  }
  state.SetItemsProcessed(state.iterations() * pages);
  state.counters["device_writes_per_flush"] =
      flushes == 0 ? 0
                   : static_cast<double>(faulty->writes_attempted() - writes_before) /
                         static_cast<double>(flushes);
}
BENCHMARK(BM_FlushCoalescing)->Arg(0)->Arg(1);

}  // namespace

BENCHMARK_MAIN();
