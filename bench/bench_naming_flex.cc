// C7 (§2.2): "a single piece of data may belong to multiple collections ... a data item
// may have many names, all equally useful and even equally used."
//
// Measures the cost of the k-th additional name on one object — hFAD AddTag vs the
// hierarchical equivalent (hard link: directory entry + nlink bump) — and the cost of
// reorganizing a "collection": retagging members vs renaming a directory. The second
// comparison is the honest one the hierarchy wins: a directory rename is a pointer
// swing, while hFAD retags every member (and the POSIX-on-hFAD layer rewrites every
// descendant path).
#include <benchmark/benchmark.h>

#include <memory>
#include <string>

#include "src/core/filesystem.h"
#include "src/hierfs/hierfs.h"
#include "src/posix/posix_fs.h"
#include "src/storage/block_device.h"

namespace {

using hfad::MemoryBlockDevice;
using hfad::core::FileSystem;
using hfad::core::FileSystemOptions;

std::unique_ptr<FileSystem> MakeHfad() {
  FileSystemOptions options;
  options.lazy_indexing_threads = 0;
  options.osd.journaling = false;
  return std::move(FileSystem::Create(std::make_shared<MemoryBlockDevice>(1ull << 30),
                                      options))
      .value();
}

// k-th additional name: hFAD tag.
void BM_KthName_HfadTag(benchmark::State& state) {
  auto fs = MakeHfad();
  auto oid = fs->Create();
  uint64_t k = 0;
  for (auto _ : state) {
    (void)fs->AddTag(*oid, {"UDEF", "collection" + std::to_string(k++)});
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["names_on_object"] = static_cast<double>(k);
}
BENCHMARK(BM_KthName_HfadTag);

// k-th additional name: hierfs hard link (each into its own directory, as collections
// would be).
void BM_KthName_HierLink(benchmark::State& state) {
  auto fs = std::move(hfad::hierfs::HierFs::Create(
                          std::make_shared<MemoryBlockDevice>(1ull << 30)))
                .value();
  (void)fs->CreateFile("/item");
  uint64_t k = 0;
  for (auto _ : state) {
    state.PauseTiming();
    std::string dir = "/collection" + std::to_string(k);
    (void)fs->Mkdir(dir);
    state.ResumeTiming();
    (void)fs->Link("/item", dir + "/item");
    k++;
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["names_on_object"] = static_cast<double>(k);
}
BENCHMARK(BM_KthName_HierLink);

// Membership query: all members of collection k, with objects in many collections.
void BM_CollectionListing_Hfad(benchmark::State& state) {
  auto fs = MakeHfad();
  const int members = static_cast<int>(state.range(0));
  for (int i = 0; i < members; i++) {
    auto oid = fs->Create({{"UDEF", "album"}});
    // Every object is also in 4 other collections — multi-membership is free.
    for (int c = 0; c < 4; c++) {
      (void)fs->AddTag(*oid, {"UDEF", "other" + std::to_string((i + c) % 16)});
    }
  }
  for (auto _ : state) {
    auto ids = fs->Lookup({{"UDEF", "album"}});
    benchmark::DoNotOptimize(ids->size());
  }
  state.SetItemsProcessed(state.iterations() * members);
  state.SetLabel(std::to_string(members) + " members");
}
BENCHMARK(BM_CollectionListing_Hfad)->Arg(100)->Arg(1000)->Unit(benchmark::kMicrosecond);

void BM_CollectionListing_HierReaddir(benchmark::State& state) {
  auto fs = std::move(hfad::hierfs::HierFs::Create(
                          std::make_shared<MemoryBlockDevice>(1ull << 30)))
                .value();
  const int members = static_cast<int>(state.range(0));
  (void)fs->Mkdir("/album");
  for (int i = 0; i < 16; i++) {
    (void)fs->Mkdir("/other" + std::to_string(i));
  }
  for (int i = 0; i < members; i++) {
    std::string name = "/album/m" + std::to_string(i);
    (void)fs->CreateFile(name);
    // Multi-membership costs a hard link per extra collection.
    for (int c = 0; c < 4; c++) {
      (void)fs->Link(name, "/other" + std::to_string((i + c) % 16) + "/m" +
                               std::to_string(i));
    }
  }
  for (auto _ : state) {
    auto entries = fs->Readdir("/album");
    benchmark::DoNotOptimize(entries->size());
  }
  state.SetItemsProcessed(state.iterations() * members);
  state.SetLabel(std::to_string(members) + " members");
}
BENCHMARK(BM_CollectionListing_HierReaddir)->Arg(100)->Arg(1000)->Unit(benchmark::kMicrosecond);

// Collection rename. hierfs: O(1) pointer swing. hFAD tags: retag every member.
// POSIX-on-hFAD: rewrite every descendant path. The hierarchy's honest win.
void BM_CollectionRename_Hier(benchmark::State& state) {
  const int members = static_cast<int>(state.range(0));
  auto fs = std::move(hfad::hierfs::HierFs::Create(
                          std::make_shared<MemoryBlockDevice>(1ull << 30)))
                .value();
  (void)fs->Mkdir("/c0");
  for (int i = 0; i < members; i++) {
    (void)fs->CreateFile("/c0/m" + std::to_string(i));
  }
  uint64_t gen = 0;
  for (auto _ : state) {
    std::string from = "/c" + std::to_string(gen);
    std::string to = "/c" + std::to_string(gen + 1);
    (void)fs->Rename(from, to);
    gen++;
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(std::to_string(members) + " members, O(1)");
}
BENCHMARK(BM_CollectionRename_Hier)->Arg(100)->Arg(1000)->Unit(benchmark::kMicrosecond);

void BM_CollectionRename_HfadRetag(benchmark::State& state) {
  const int members = static_cast<int>(state.range(0));
  auto fs = MakeHfad();
  for (int i = 0; i < members; i++) {
    (void)fs->Create({{"UDEF", "gen0"}});
  }
  uint64_t gen = 0;
  for (auto _ : state) {
    std::string from = "gen" + std::to_string(gen);
    std::string to = "gen" + std::to_string(gen + 1);
    auto ids = fs->Lookup({{"UDEF", from}});
    for (auto oid : *ids) {
      (void)fs->AddTag(oid, {"UDEF", to});
      (void)fs->RemoveTag(oid, {"UDEF", from});
    }
    gen++;
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(std::to_string(members) + " members, O(members)");
}
BENCHMARK(BM_CollectionRename_HfadRetag)->Arg(100)->Arg(1000)->Unit(benchmark::kMillisecond);

void BM_CollectionRename_HfadPosixDir(benchmark::State& state) {
  const int members = static_cast<int>(state.range(0));
  auto fs = MakeHfad();
  auto pfs = std::move(hfad::posix::PosixFs::Mount(fs.get())).value();
  (void)pfs->Mkdir("/c0");
  for (int i = 0; i < members; i++) {
    auto fd = pfs->Open("/c0/m" + std::to_string(i),
                        hfad::posix::kWrite | hfad::posix::kCreate);
    (void)pfs->Close(*fd);
  }
  uint64_t gen = 0;
  for (auto _ : state) {
    std::string from = "/c" + std::to_string(gen);
    std::string to = "/c" + std::to_string(gen + 1);
    (void)pfs->Rename(from, to);
    gen++;
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(std::to_string(members) + " members, full-path rewrite");
}
BENCHMARK(BM_CollectionRename_HfadPosixDir)->Arg(100)->Arg(1000)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
