// Sharded OsdCluster scaling: the durability storms from bench_journal.cc rerun at
// shard_count 1, 4, and 8, so the number under test is how much per-shard journals and
// per-shard group commit buy once every volume syncs independently.
//
// SlowSyncDevice charges 100us per Sync (one NVMe FLUSH) on every shard. Each op makes
// itself durable on the OWNING shard only — the cluster's contract is that an object's
// records live in its owner's journal — so threads spread across shards ride
// independent fsync queues instead of one global one. The numbers to watch:
//
//   * OsdSyncStorm/4@8  vs  OsdSyncStorm/1@8 — the acceptance ratio (>= 2.5x): eight
//     fsync-per-op writers over four journals vs one.
//   * TagStormSync/N@8 — the same window through the FileSystem batch path (tag-shard
//     locks, reverse map on the metadata shard, journal on the owner).
//
// BENCH_cluster.json holds the checked-in trajectory; docs/BENCHMARKS.md has the
// regeneration commands.
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/core/filesystem.h"
#include "src/osd/osd.h"
#include "src/osd/osd_cluster.h"
#include "src/storage/block_device.h"

namespace {

using hfad::BlockDevice;
using hfad::MemoryBlockDevice;
using hfad::Slice;
using hfad::Status;
using hfad::core::FileSystem;
using hfad::core::FileSystemOptions;
using hfad::osd::OsdCluster;
using hfad::osd::OsdOptions;

// Same device model as bench_journal.cc: Sync costs a fixed latency, everything else
// runs at RAM speed.
class SlowSyncDevice : public BlockDevice {
 public:
  SlowSyncDevice(std::shared_ptr<BlockDevice> base, std::chrono::microseconds sync_cost)
      : base_(std::move(base)), sync_cost_(sync_cost) {}

  Status Read(uint64_t offset, size_t size, std::string* out) const override {
    return base_->Read(offset, size, out);
  }
  Status Write(uint64_t offset, Slice data) override {
    return base_->Write(offset, data);
  }
  Status Sync() override {
    syncs_.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::sleep_for(sync_cost_);
    return base_->Sync();
  }
  uint64_t Size() const override { return base_->Size(); }

  uint64_t syncs() const { return syncs_.load(std::memory_order_relaxed); }

 private:
  std::shared_ptr<BlockDevice> base_;
  const std::chrono::microseconds sync_cost_;
  std::atomic<uint64_t> syncs_{0};
};

constexpr auto kSyncCost = std::chrono::microseconds(100);
constexpr uint64_t kShardBytes = 128ull * 1024 * 1024;

std::vector<std::shared_ptr<SlowSyncDevice>> g_slow;
std::unique_ptr<OsdCluster> g_cluster;
std::unique_ptr<FileSystem> g_fs;

std::vector<std::shared_ptr<BlockDevice>> MakeSlowDevices(size_t shards) {
  g_slow.clear();
  std::vector<std::shared_ptr<BlockDevice>> devices;
  for (size_t i = 0; i < shards; i++) {
    g_slow.push_back(std::make_shared<SlowSyncDevice>(
        std::make_shared<MemoryBlockDevice>(kShardBytes), kSyncCost));
    devices.push_back(g_slow.back());
  }
  return devices;
}

uint64_t TotalSyncs() {
  uint64_t n = 0;
  for (const auto& d : g_slow) {
    n += d->syncs();
  }
  return n;
}

// fsync-per-op through the cluster: every iteration creates an object and syncs its
// owning shard. Arg = shard count.
void BM_OsdSyncStorm(benchmark::State& state) {
  const size_t shards = static_cast<size_t>(state.range(0));
  if (state.thread_index() == 0) {
    g_cluster = std::move(OsdCluster::Create(MakeSlowDevices(shards), OsdOptions{}))
                    .value();
  }
  for (auto _ : state) {
    auto oid = g_cluster->CreateObject();
    benchmark::DoNotOptimize(oid.ok());
    Status s = g_cluster->owner(*oid)->Sync();
    benchmark::DoNotOptimize(s.ok());
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    state.counters["syncs"] = static_cast<double>(TotalSyncs());
    state.counters["shards"] = static_cast<double>(shards);
    g_cluster.reset();
    g_slow.clear();
  }
}
BENCHMARK(BM_OsdSyncStorm)->Arg(1)->Arg(4)->Arg(8)->ThreadRange(1, 8)->UseRealTime()
    ->MeasureProcessCPUTime();

// Tag storm with per-batch durability through the sharded FileSystem: each iteration
// commits a NamespaceBatch of 4 tags on a fresh object and syncs that object's owning
// shard (the batch's journal record lives there). Arg = shard count.
void BM_TagStormSync(benchmark::State& state) {
  const size_t shards = static_cast<size_t>(state.range(0));
  if (state.thread_index() == 0) {
    FileSystemOptions options;
    options.lazy_indexing_threads = 0;
    options.shard_count = shards;
    g_fs = std::move(FileSystem::Create(MakeSlowDevices(shards), options)).value();
  }
  const std::string user = "user" + std::to_string(state.thread_index());
  uint64_t i = 0;
  for (auto _ : state) {
    auto batch = g_fs->NewBatch();
    auto oid = batch.Create({{"USER", user}});
    benchmark::DoNotOptimize(oid.ok());
    std::string n = std::to_string(i++);
    (void)batch.AddTag(*oid, {"UDEF", "a" + n});
    (void)batch.AddTag(*oid, {"UDEF", "b" + n});
    (void)batch.AddTag(*oid, {"APP", "bench"});
    Status s = batch.Commit();
    benchmark::DoNotOptimize(s.ok());
    s = g_fs->cluster()->owner(*oid)->Sync();
    benchmark::DoNotOptimize(s.ok());
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    state.counters["syncs"] = static_cast<double>(TotalSyncs());
    state.counters["shards"] = static_cast<double>(shards);
    g_fs.reset();
    g_slow.clear();
  }
}
BENCHMARK(BM_TagStormSync)->Arg(1)->Arg(4)->Arg(8)->ThreadRange(1, 8)->UseRealTime()
    ->MeasureProcessCPUTime();

}  // namespace

BENCHMARK_MAIN();
