// Fault-domain hardening overhead: (1) CRC32C verification cost on the pager's
// cold-miss read path, checksums on vs. off — the acceptance bar is < 5% on-cost —
// and (2) surviving-shard throughput on a 4-shard cluster with one shard failed
// vs. all healthy, which should be flat: a dead shard's gate is one relaxed atomic
// load on the owning volume, and routing never touches the other shards. Baseline
// lives in BENCH_faults.json.
#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "src/osd/osd.h"
#include "src/osd/osd_cluster.h"
#include "src/storage/block_device.h"
#include "src/storage/pager.h"
#include "src/storage/volume_health.h"

namespace {

using hfad::BlockDevice;
using hfad::HealthState;
using hfad::MemoryBlockDevice;
using hfad::osd::ObjectId;
using hfad::osd::Osd;
using hfad::osd::OsdCluster;
using hfad::osd::OsdOptions;

constexpr uint64_t kDev = 256ull * 1024 * 1024;
constexpr int kObjects = 4096;
constexpr size_t kObjectBytes = 4096;

std::string Payload(int i) {
  std::string out;
  while (out.size() < kObjectBytes) {
    out += "bench-faults-" + std::to_string(i) + "|";
  }
  out.resize(kObjectBytes);
  return out;
}

// A volume whose working set is far larger than the page cache, so every read in the
// measurement loop is a pager miss: device read (+ CRC verify when enabled).
struct ColdVolume {
  std::shared_ptr<MemoryBlockDevice> dev;
  std::unique_ptr<Osd> osd;
  std::vector<ObjectId> oids;

  explicit ColdVolume(bool checksums) {
    dev = std::make_shared<MemoryBlockDevice>(kDev);
    OsdOptions opts;
    opts.io_threads = 0;
    opts.page_checksums = checksums;
    opts.pager_capacity_pages = 64;  // ~256 KiB cache vs. a 16 MiB working set.
    osd = std::move(Osd::Create(dev, opts)).value();
    for (int i = 0; i < kObjects; i++) {
      auto oid = osd->CreateObject();
      (void)osd->Write(*oid, 0, Payload(i));
      oids.push_back(*oid);
    }
    (void)osd->Checkpoint();  // Stamp every page; cache drains to clean.
  }
};

// state.range(0): 0 = checksums off (baseline), 1 = on (verify every miss).
void BM_PageReadColdMiss(benchmark::State& state) {
  static ColdVolume plain(false);
  static ColdVolume checked(true);
  ColdVolume& vol = state.range(0) ? checked : plain;
  size_t i = 0;
  std::string out;
  for (auto _ : state) {
    // Stride coprime with the object count: defeats both the cache and readahead.
    i = (i + 2039) % vol.oids.size();
    benchmark::DoNotOptimize(vol.osd->Read(vol.oids[i], 0, kObjectBytes, &out).ok());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations() * kObjectBytes));
  state.SetLabel(state.range(0) ? "checksums_on" : "checksums_off");
}
BENCHMARK(BM_PageReadColdMiss)->Arg(0)->Arg(1)->Iterations(30000)
    ->Unit(benchmark::kMicrosecond);

struct Cluster {
  std::unique_ptr<OsdCluster> cluster;
  // Objects owned by shards other than the victim (shard 2).
  std::vector<ObjectId> surviving;

  explicit Cluster(bool degraded) {
    std::vector<std::shared_ptr<BlockDevice>> devices;
    for (int i = 0; i < 4; i++) {
      devices.push_back(std::make_shared<MemoryBlockDevice>(kDev / 4));
    }
    OsdOptions opts;
    opts.io_threads = 0;
    cluster = std::move(OsdCluster::Create(devices, opts)).value();
    for (int i = 0; i < kObjects; i++) {
      auto oid = cluster->CreateObject();
      (void)cluster->Write(*oid, 0, Payload(i));
      if (cluster->ShardOf(*oid) != 2) {
        surviving.push_back(*oid);
      }
    }
    if (degraded) {
      cluster->shard(2)->health().Escalate(HealthState::kFailed, "bench: dead shard");
    }
  }
};

// state.range(0): 0 = all healthy, 1 = shard 2 failed. Reads go only to survivors in
// both modes, so the delta is pure health-gate + degraded-routing overhead.
void BM_DegradedClusterRead(benchmark::State& state) {
  static Cluster healthy(false);
  static Cluster degraded(true);
  Cluster& c = state.range(0) ? degraded : healthy;
  size_t i = 0;
  std::string out;
  for (auto _ : state) {
    i = (i + 1009) % c.surviving.size();
    benchmark::DoNotOptimize(c.cluster->Read(c.surviving[i], 0, kObjectBytes, &out).ok());
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(state.range(0) ? "one_shard_failed" : "all_healthy");
}
BENCHMARK(BM_DegradedClusterRead)->Arg(0)->Arg(1)->Iterations(30000)
    ->Unit(benchmark::kMicrosecond);

void BM_DegradedClusterWrite(benchmark::State& state) {
  static Cluster healthy(false);
  static Cluster degraded(true);
  Cluster& c = state.range(0) ? degraded : healthy;
  size_t i = 0;
  for (auto _ : state) {
    i = (i + 1009) % c.surviving.size();
    benchmark::DoNotOptimize(c.cluster->Write(c.surviving[i], 0, "overwrite-16-byte").ok());
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(state.range(0) ? "one_shard_failed" : "all_healthy");
}
BENCHMARK(BM_DegradedClusterWrite)->Arg(0)->Arg(1)->Iterations(20000)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
