// The unified naming API under load: boolean plans of varying selectivity through the
// cost-based planner, paginated vs. materializing lookup, and batched vs. per-tag
// namespace mutation (journal records written is the headline: one per batch vs. one
// per tag). Baseline lives in BENCH_query.json; numbers in docs/BENCHMARKS.md.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "src/core/filesystem.h"
#include "src/query/query.h"
#include "src/storage/block_device.h"

namespace {

using hfad::MemoryBlockDevice;
using hfad::core::FileSystem;
using hfad::core::FileSystemOptions;
using hfad::core::NamespaceBatch;
using hfad::core::TagValue;
using hfad::query::FindOptions;
using hfad::query::PlanStats;

// Skewed read-mostly volume for the query benches (journaling off: pure index cost).
//   huge: every object (n)   big: n/10   mid: n/100   rare: n/1000
struct QueryFixture {
  explicit QueryFixture(int n) {
    FileSystemOptions options;
    options.lazy_indexing_threads = 0;
    options.osd.journaling = false;
    fs = std::move(FileSystem::Create(std::make_shared<MemoryBlockDevice>(1ull << 30),
                                      options))
             .value();
    for (int i = 0; i < n; i++) {
      auto oid = fs->Create({{"UDEF", "huge"}});
      if (i % 10 == 0) {
        (void)fs->AddTag(*oid, {"UDEF", "big"});
      }
      if (i % 100 == 0) {
        (void)fs->AddTag(*oid, {"UDEF", "mid"});
      }
      if (i % 1000 == 0) {
        (void)fs->AddTag(*oid, {"UDEF", "rare"});
      }
    }
  }
  std::unique_ptr<FileSystem> fs;
};

QueryFixture* Fixture() {
  static QueryFixture f(20000);
  return &f;
}

// ---------------------------------------------------------------- boolean selectivity

void RunFind(benchmark::State& state, const char* query) {
  FileSystem* fs = Fixture()->fs.get();
  uint64_t rows = 0, lookups = 0, probes = 0, results = 0, runs = 0;
  for (auto _ : state) {
    PlanStats stats;
    FindOptions options;
    options.stats = &stats;
    auto r = fs->Find(query, options);
    benchmark::DoNotOptimize(r.ok());
    rows += stats.rows_scanned;
    lookups += stats.index_lookups;
    probes += stats.membership_probes;
    results += r.ok() ? r->ids.size() : 0;
    runs++;
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["rows_scanned"] = static_cast<double>(rows) / runs;
  state.counters["index_lookups"] = static_cast<double>(lookups) / runs;
  state.counters["membership_probes"] = static_cast<double>(probes) / runs;
  state.counters["results"] = static_cast<double>(results) / runs;
}

// High selectivity: the planner drives with 20 postings against 20000.
void BM_Find_RareAndHuge(benchmark::State& state) { RunFind(state, "UDEF:rare AND UDEF:huge"); }
BENCHMARK(BM_Find_RareAndHuge)->Unit(benchmark::kMicrosecond);

// Medium selectivity: 200 against 2000.
void BM_Find_MidAndBig(benchmark::State& state) { RunFind(state, "UDEF:mid AND UDEF:big"); }
BENCHMARK(BM_Find_MidAndBig)->Unit(benchmark::kMicrosecond);

// Low selectivity with negation: most of the volume survives.
void BM_Find_HugeNotBig(benchmark::State& state) {
  RunFind(state, "UDEF:huge AND NOT UDEF:big");
}
BENCHMARK(BM_Find_HugeNotBig)->Unit(benchmark::kMicrosecond);

// Disjunction merge.
void BM_Find_MidOrRare(benchmark::State& state) { RunFind(state, "UDEF:mid OR UDEF:rare"); }
BENCHMARK(BM_Find_MidOrRare)->Unit(benchmark::kMicrosecond);

// ---------------------------------------------------------------- paginated vs. full

// The legacy shape: materialize all ~20000 ids per call.
void BM_Lookup_Materializing(benchmark::State& state) {
  FileSystem* fs = Fixture()->fs.get();
  for (auto _ : state) {
    auto r = fs->Lookup({{"UDEF", "huge"}});
    benchmark::DoNotOptimize(r.ok() ? r->size() : 0);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Lookup_Materializing)->Unit(benchmark::kMicrosecond);

// The streaming shape: one 64-id page of the same result set per call.
void BM_Find_FirstPage64(benchmark::State& state) {
  FileSystem* fs = Fixture()->fs.get();
  FindOptions options;
  options.limit = 64;
  for (auto _ : state) {
    auto r = fs->Find("UDEF:huge", options);
    benchmark::DoNotOptimize(r.ok() ? r->ids.size() : 0);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Find_FirstPage64)->Unit(benchmark::kMicrosecond);

// ---------------------------------------------------------------- batched mutation

constexpr int kTagsPerObject = 8;

// Journaled volume for the mutation benches (group commit on, the default).
std::unique_ptr<FileSystem> MakeJournaledFs() {
  FileSystemOptions options;
  options.lazy_indexing_threads = 0;
  return std::move(FileSystem::Create(std::make_shared<MemoryBlockDevice>(1ull << 30),
                                      options))
      .value();
}

// N loose AddTag calls: one tag-shard acquisition and one journal record per tag.
void BM_Mutate_PerTagAddTag(benchmark::State& state) {
  auto fs = MakeJournaledFs();
  uint64_t records = 0, ops = 0;
  int serial = 0;
  for (auto _ : state) {
    auto oid = fs->Create(std::vector<TagValue>{});
    uint64_t before = fs->volume()->journal_records_appended();
    for (int t = 0; t < kTagsPerObject; t++) {
      (void)fs->AddTag(*oid, {"UDEF", "tag" + std::to_string((serial + t) % 64)});
    }
    records += fs->volume()->journal_records_appended() - before;
    ops++;
    serial++;
  }
  state.SetItemsProcessed(state.iterations() * kTagsPerObject);
  state.counters["journal_records_per_object"] = static_cast<double>(records) / ops;
}
BENCHMARK(BM_Mutate_PerTagAddTag)->Unit(benchmark::kMicrosecond);

// The same tags staged on a NamespaceBatch: one multi-shard acquisition, ONE record.
void BM_Mutate_BatchedAddTag(benchmark::State& state) {
  auto fs = MakeJournaledFs();
  uint64_t records = 0, ops = 0;
  int serial = 0;
  for (auto _ : state) {
    auto oid = fs->Create(std::vector<TagValue>{});
    uint64_t before = fs->volume()->journal_records_appended();
    NamespaceBatch batch = fs->NewBatch();
    for (int t = 0; t < kTagsPerObject; t++) {
      (void)batch.AddTag(*oid, {"UDEF", "tag" + std::to_string((serial + t) % 64)});
    }
    (void)batch.Commit();
    records += fs->volume()->journal_records_appended() - before;
    ops++;
    serial++;
  }
  state.SetItemsProcessed(state.iterations() * kTagsPerObject);
  state.counters["journal_records_per_object"] = static_cast<double>(records) / ops;
}
BENCHMARK(BM_Mutate_BatchedAddTag)->Unit(benchmark::kMicrosecond);

// Create with initial names also rides one batch record now.
void BM_Mutate_CreateWithNames(benchmark::State& state) {
  auto fs = MakeJournaledFs();
  uint64_t records = 0, ops = 0;
  for (auto _ : state) {
    uint64_t before = fs->volume()->journal_records_appended();
    std::vector<TagValue> names;
    for (int t = 0; t < kTagsPerObject; t++) {
      names.push_back({"UDEF", "tag" + std::to_string(t)});
    }
    auto oid = fs->Create(names);
    benchmark::DoNotOptimize(oid.ok());
    records += fs->volume()->journal_records_appended() - before;
    ops++;
  }
  state.SetItemsProcessed(state.iterations() * kTagsPerObject);
  state.counters["journal_records_per_object"] = static_cast<double>(records) / ops;
}
BENCHMARK(BM_Mutate_CreateWithNames)->Unit(benchmark::kMicrosecond);

}  // namespace

// BENCHMARK_MAIN plus an optional metrics dump: with HFAD_DUMP_METRICS=<path> the
// run's FileSystem::DumpMetrics() JSON lands there after the benchmarks finish (CI
// validates it against the documented schema via tools/check_metrics_schema.py).
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (const char* path = std::getenv("HFAD_DUMP_METRICS")) {
    std::string doc = Fixture()->fs->DumpMetrics();
    std::FILE* f = std::fopen(path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s for metrics dump\n", path);
      return 1;
    }
    std::fwrite(doc.data(), 1, doc.size(), f);
    std::fclose(f);
  }
  return 0;
}
