// T1 (Table 1): every naming mode — POSIX path, FULLTEXT term, USER/UDEF manual tags,
// APP tags, and the ID fastpath — measured as lookup latency against volume size.
#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "src/common/random.h"
#include "src/core/filesystem.h"
#include "src/storage/block_device.h"

namespace {

using hfad::MemoryBlockDevice;
using hfad::Random;
using hfad::core::FileSystem;
using hfad::core::FileSystemOptions;
using hfad::core::ObjectId;

// One volume per size, shared by all naming-mode benches at that size.
struct Fixture {
  explicit Fixture(int objects) {
    FileSystemOptions options;
    options.lazy_indexing_threads = 0;
    options.osd.journaling = false;
    fs = std::move(FileSystem::Create(std::make_shared<MemoryBlockDevice>(2ull << 30),
                                      options))
             .value();
    Random rng(17);
    oids.reserve(objects);
    for (int i = 0; i < objects; i++) {
      std::string suffix = std::to_string(i);
      auto oid = fs->Create({{"POSIX", "/corpus/dir" + std::to_string(i % 100) +
                                           "/file" + suffix},
                             {"USER", "user" + std::to_string(i % 50)},
                             {"UDEF", "tag" + suffix},
                             {"APP", "app" + std::to_string(i % 10)}});
      (void)fs->Write(*oid, 0, "content body with token" + suffix + " inside");
      (void)fs->IndexContent(*oid);
      oids.push_back(*oid);
    }
  }

  std::unique_ptr<FileSystem> fs;
  std::vector<ObjectId> oids;
};

Fixture* GetFixture(int objects) {
  static Fixture f10k(10000);
  static Fixture f100k(100000);
  return objects == 10000 ? &f10k : &f100k;
}

void BM_NamePosixPath(benchmark::State& state) {
  Fixture* f = GetFixture(static_cast<int>(state.range(0)));
  Random rng(1);
  const int n = static_cast<int>(f->oids.size());
  for (auto _ : state) {
    int i = static_cast<int>(rng.Uniform(n));
    auto ids = f->fs->Lookup({{"POSIX", "/corpus/dir" + std::to_string(i % 100) +
                                            "/file" + std::to_string(i)}});
    benchmark::DoNotOptimize(ids.ok());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NamePosixPath)->Arg(10000)->Arg(100000)->Unit(benchmark::kMicrosecond);

void BM_NameFulltextTerm(benchmark::State& state) {
  Fixture* f = GetFixture(static_cast<int>(state.range(0)));
  Random rng(2);
  const int n = static_cast<int>(f->oids.size());
  for (auto _ : state) {
    auto ids = f->fs->Lookup(
        {{"FULLTEXT", "token" + std::to_string(rng.Uniform(n))}});
    benchmark::DoNotOptimize(ids.ok());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NameFulltextTerm)->Arg(10000)->Arg(100000)->Unit(benchmark::kMicrosecond);

void BM_NameUserTag(benchmark::State& state) {
  Fixture* f = GetFixture(static_cast<int>(state.range(0)));
  Random rng(3);
  for (auto _ : state) {
    // USER values are shared by n/50 objects: measures multi-result naming.
    auto ids = f->fs->Lookup({{"USER", "user" + std::to_string(rng.Uniform(50))}});
    benchmark::DoNotOptimize(ids.ok());
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("~n/50 results per lookup");
}
BENCHMARK(BM_NameUserTag)->Arg(10000)->Arg(100000)->Unit(benchmark::kMicrosecond);

void BM_NameUdefTag(benchmark::State& state) {
  Fixture* f = GetFixture(static_cast<int>(state.range(0)));
  Random rng(4);
  const int n = static_cast<int>(f->oids.size());
  for (auto _ : state) {
    auto ids = f->fs->Lookup({{"UDEF", "tag" + std::to_string(rng.Uniform(n))}});
    benchmark::DoNotOptimize(ids.ok());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NameUdefTag)->Arg(10000)->Arg(100000)->Unit(benchmark::kMicrosecond);

void BM_NameAppConjunction(benchmark::State& state) {
  Fixture* f = GetFixture(static_cast<int>(state.range(0)));
  Random rng(5);
  const int n = static_cast<int>(f->oids.size());
  for (auto _ : state) {
    // Table 1's application row: APP plus USER, as applications tag both.
    int i = static_cast<int>(rng.Uniform(n));
    auto ids = f->fs->Lookup({{"APP", "app" + std::to_string(i % 10)},
                              {"USER", "user" + std::to_string(i % 50)}});
    benchmark::DoNotOptimize(ids.ok());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NameAppConjunction)->Arg(10000)->Arg(100000)->Unit(benchmark::kMicrosecond);

void BM_NameIdFastpath(benchmark::State& state) {
  Fixture* f = GetFixture(static_cast<int>(state.range(0)));
  Random rng(6);
  const int n = static_cast<int>(f->oids.size());
  for (auto _ : state) {
    auto ids = f->fs->Lookup(
        {{"ID", std::to_string(f->oids[rng.Uniform(n)])}});
    benchmark::DoNotOptimize(ids.ok());
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("object-reference caching path");
}
BENCHMARK(BM_NameIdFastpath)->Arg(10000)->Arg(100000)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
