#!/usr/bin/env python3
"""Validate a DumpMetrics() JSON document against the documented schema.

Usage: check_metrics_schema.py <metrics.json>

Pins the schema described in docs/OBSERVABILITY.md: required top-level keys,
the minimum histogram/gauge sets the acceptance criteria name, and the shape of
every histogram entry and lock-stats block. Stdlib only (json) so it runs in
any CI image with python3.
"""
import json
import sys

REQUIRED_TOP = ["schema_version", "scope", "counters", "histograms", "gauges", "locks"]

# Histograms that must exist with a recorded sample after a bench_query run is a
# smaller set; existence (key present with the right shape) is required for all.
REQUIRED_HISTOGRAMS = [
    "create",
    "add_tag",
    "find",
    "search_text",
    "journal_commit",
    "page_read",
]

HIST_FIELDS = ["count", "sum_ns", "mean_ns", "p50_ns", "p90_ns", "p99_ns", "max_ns"]

REQUIRED_GAUGES = [
    "journal_occupancy_pct",
    "pager_resident_pages",
    "pager_dirty_pages",
    "checkpointer_state",
    "io_backend",
    "io_submitted",
    "io_completed",
    "io_in_flight",
    "io_max_queue_depth",
    # Fault-domain health (both scopes).
    "volume_health",
    "volume_health_name",
    "pager_writeback_error",
    "checksums_enabled",
    "scrub_passes",
    "quarantined_pages",
]

# Every gauge DumpMetrics may emit, per scope. An emitter adding a gauge without
# updating this list (and docs/OBSERVABILITY.md) fails the check: unknown keys
# are how schema drift sneaks past dashboards.
KNOWN_GAUGES = {
    "filesystem": set(REQUIRED_GAUGES)
    | {
        "journal_pending_records",
        "indexer_queue_depth",
        "object_count",
        "shard_count",
    },
    "osd": set(REQUIRED_GAUGES)
    | {
        "journal_pending_records",
        "object_count",
        "heap_allocated_bytes",
    },
}

# Gauges that must be integers (io_backend is a string label).
INT_IO_GAUGES = [
    "io_submitted",
    "io_completed",
    "io_in_flight",
    "io_max_queue_depth",
]

LOCK_FIELDS = ["total_acquisitions", "total_contentions", "top_contended"]


def fail(msg):
    print(f"schema check FAILED: {msg}", file=sys.stderr)
    sys.exit(1)


def check_lock_block(name, block):
    for field in LOCK_FIELDS:
        if field not in block:
            fail(f"locks.{name} missing '{field}'")
    if not isinstance(block["top_contended"], list):
        fail(f"locks.{name}.top_contended is not an array")
    for entry in block["top_contended"]:
        for field in ["shard", "acquisitions", "contentions"]:
            if not isinstance(entry.get(field), int):
                fail(f"locks.{name}.top_contended entry missing int '{field}'")


def main():
    if len(sys.argv) != 2:
        fail(f"usage: {sys.argv[0]} <metrics.json>")
    with open(sys.argv[1]) as f:
        doc = json.load(f)

    for key in REQUIRED_TOP:
        if key not in doc:
            fail(f"missing top-level key '{key}'")
    if doc["schema_version"] != 1:
        fail(f"unexpected schema_version {doc['schema_version']}")
    if doc["scope"] not in ("filesystem", "osd"):
        fail(f"unexpected scope '{doc['scope']}'")

    counters = doc["counters"]
    if not counters or not all(isinstance(v, int) for v in counters.values()):
        fail("counters must be a non-empty object of integers")

    hists = doc["histograms"]
    for name in REQUIRED_HISTOGRAMS:
        if name not in hists:
            fail(f"missing histogram '{name}'")
    for name, h in hists.items():
        for field in HIST_FIELDS:
            if not isinstance(h.get(field), int):
                fail(f"histogram '{name}' missing int field '{field}'")
        if h["count"] > 0 and h["max_ns"] < h["p50_ns"]:
            fail(f"histogram '{name}': max_ns < p50_ns")

    gauges = doc["gauges"]
    for name in REQUIRED_GAUGES:
        if name not in gauges:
            fail(f"missing gauge '{name}'")
    unknown = sorted(set(gauges) - KNOWN_GAUGES[doc["scope"]])
    if unknown:
        fail(
            f"unknown gauge(s) {unknown} for scope '{doc['scope']}' — "
            "add them to KNOWN_GAUGES and docs/OBSERVABILITY.md"
        )
    if not isinstance(gauges["io_backend"], str):
        fail("gauge 'io_backend' must be a string")
    if not isinstance(gauges["volume_health_name"], str):
        fail("gauge 'volume_health_name' must be a string")
    if gauges["volume_health_name"] not in ("healthy", "degraded", "read_only", "failed"):
        fail(f"unexpected volume_health_name '{gauges['volume_health_name']}'")
    for name in INT_IO_GAUGES:
        if not isinstance(gauges[name], int):
            fail(f"gauge '{name}' must be an integer")
    for name in ("volume_health", "pager_writeback_error", "checksums_enabled",
                 "scrub_passes", "quarantined_pages"):
        if not isinstance(gauges[name], int):
            fail(f"gauge '{name}' must be an integer")
    if not 0 <= gauges["volume_health"] <= 3:
        fail(f"gauge 'volume_health' out of range: {gauges['volume_health']}")
    if gauges["pager_writeback_error"] not in (0, 1):
        fail("gauge 'pager_writeback_error' must be 0 or 1")
    if gauges["checksums_enabled"] not in (0, 1):
        fail("gauge 'checksums_enabled' must be 0 or 1")

    locks = doc["locks"]
    if "pager_stripes" not in locks:
        fail("locks missing 'pager_stripes'")
    for name, block in locks.items():
        check_lock_block(name, block)

    print(
        f"schema OK: scope={doc['scope']} "
        f"{len(counters)} counters, {len(hists)} histograms, {len(gauges)} gauges"
    )


if __name__ == "__main__":
    main()
